(* Tests for the generalized (per-read) regularity checker and the
   atomic ABD variant with reader write-back. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_history
open Regemu_workload

let test name f = Alcotest.test_case name `Quick f
let params k f n = Params.make_exn ~k ~f ~n

(* hand-built ops, as in suite_history *)
let op ?result ~index ~client ~hop ~inv ?ret () =
  {
    History.index;
    client = Id.Client.of_int client;
    hop;
    invoked_at = inv;
    returned_at = ret;
    result;
  }

let w ?ret ~index ~client ~inv value =
  op ~index ~client ~hop:(Trace.H_write (Value.Str value)) ~inv ?ret
    ?result:(if ret = None then None else Some Value.Unit) ()

let r ~index ~client ~inv ~ret value =
  op ~index ~client ~hop:Trace.H_read ~inv ~ret ~result:(Value.Str value) ()

let checker_tests =
  [
    test "weak regularity allows per-read disagreement on concurrent writes"
      (fun () ->
        (* two concurrent writes; two concurrent reads disagree on their
           order: weakly regular but NOT atomic *)
        let h =
          [
            w ~index:0 ~client:0 ~inv:1 ~ret:10 "a";
            w ~index:1 ~client:1 ~inv:2 ~ret:11 "b";
            r ~index:2 ~client:2 ~inv:3 ~ret:4 "a";
            r ~index:3 ~client:3 ~inv:5 ~ret:6 "b";
            r ~index:4 ~client:2 ~inv:7 ~ret:8 "a";
          ]
        in
        Alcotest.(check bool) "weak regular" true (Regularity.is_weak_regular h);
        Alcotest.(check bool) "not atomic" false (Regularity.is_atomic h));
    test "weak regularity still forbids stale reads" (fun () ->
        let h =
          [
            w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            w ~index:1 ~client:1 ~inv:3 ~ret:4 "b";
            r ~index:2 ~client:2 ~inv:5 ~ret:6 "a";
          ]
        in
        match Regularity.check_weak_regular h with
        | Regularity.Violated rd ->
            Alcotest.(check int) "the read" 2 rd.History.index
        | Regularity.Holds -> Alcotest.fail "expected violation");
    test "atomicity implies weak regularity (spot check)" (fun () ->
        let h =
          [
            w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            r ~index:1 ~client:2 ~inv:3 ~ret:4 "a";
          ]
        in
        Alcotest.(check bool) "atomic" true (Regularity.is_atomic h);
        Alcotest.(check bool) "weak regular" true (Regularity.is_weak_regular h));
  ]

(* agreement with Ws_check on write-sequential histories (random) *)
let gen_ws_history =
  QCheck.Gen.(
    let* num_writes = int_range 0 3 in
    let* gap = int_range 0 (2 * Stdlib.max 1 num_writes) in
    let* len = int_range 1 3 in
    let* v_ix = int_range 0 (Stdlib.max 0 (num_writes - 1)) in
    let writes =
      List.init num_writes (fun i ->
          w ~index:i ~client:i
            ~inv:((2 * i) + 1)
            ~ret:((2 * i) + 2)
            (Fmt.str "v%d" i))
    in
    let read =
      if num_writes = 0 then
        op ~index:0 ~client:99 ~hop:Trace.H_read ~inv:gap ~ret:(gap + len)
          ~result:Value.v0 ()
      else
        r ~index:num_writes ~client:99 ~inv:gap ~ret:(gap + len)
          (Fmt.str "v%d" v_ix)
    in
    return (writes @ [ read ]))

let agreement_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"weak regularity = WS-Regularity on write-sequential histories"
         ~count:800
         (QCheck.make gen_ws_history ~print:(fun h -> Fmt.str "%a" History.pp h))
         (fun h ->
           let weak = Regularity.is_weak_regular h in
           let ws =
             match Ws_check.check_ws_regular h with
             | Ws_check.Holds | Ws_check.Vacuous -> true
             | Ws_check.Violated _ -> false
           in
           weak = ws));
  ]

(* --- emulations under fully concurrent writes -------------------------- *)

let concurrent_history factory p ~seed =
  match
    Scenario.chaos factory p ~writes_per_writer:2 ~readers:2
      ~reads_per_reader:2 ~crashes:0 ~seed ()
  with
  | Ok r -> r.history
  | Error e -> Alcotest.failf "chaos failed: %a" Scenario.error_pp e

let arb_seed =
  QCheck.make
    QCheck.Gen.(int_range 0 1_000_000)
    ~print:string_of_int

let emulation_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"abd-max is weakly regular even with concurrent writes"
         ~count:60 arb_seed
         (fun seed ->
           Regularity.is_weak_regular
             (concurrent_history Regemu_baselines.Abd_max.factory
                (params 2 1 3) ~seed)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"abd-max-atomic histories are atomic (linearizable)"
         ~count:60 arb_seed
         (fun seed ->
           Regularity.is_atomic
             (concurrent_history Regemu_baselines.Abd_max_atomic.factory
                (params 2 1 3) ~seed)));
    test "abd-max-atomic passes the shared emulation obligations" (fun () ->
        let p = params 3 1 4 in
        (match
           Scenario.write_sequential Regemu_baselines.Abd_max_atomic.factory p
             ~read_after_each:true ~rounds:2 ~seed:3 ()
         with
        | Error e -> Alcotest.failf "seq: %a" Scenario.error_pp e
        | Ok r -> (
            match Ws_check.check_ws_safe r.history with
            | Ws_check.Holds -> ()
            | v -> Alcotest.failf "ws-safe: %a" Ws_check.verdict_pp v));
        match
          Scenario.chaos Regemu_baselines.Abd_max_atomic.factory p
            ~writes_per_writer:2 ~readers:2 ~reads_per_reader:2 ~crashes:1
            ~seed:4 ()
        with
        | Error e -> Alcotest.failf "chaos: %a" Scenario.error_pp e
        | Ok r ->
            Alcotest.(check int)
              "all complete"
              (List.length r.history)
              (List.length (History.complete r.history)));
    test "abd-max-atomic still uses exactly 2f+1 objects" (fun () ->
        let p = params 4 2 6 in
        let sim = Sim.create ~n:p.Params.n () in
        let writers = List.init p.Params.k (fun _ -> Sim.new_client sim) in
        let inst = Regemu_baselines.Abd_max_atomic.factory.make sim p ~writers in
        Alcotest.(check int) "objects" 5 (List.length (inst.objects ())));
    test "plain abd-max is NOT atomic: the new/old inversion" (fun () ->
        match Regemu_adversary.Inversion.against_abd_max () with
        | Error e -> Alcotest.failf "construction failed: %s" e
        | Ok o ->
            Alcotest.(check bool)
              "first read saw the new value" true
              (Value.equal o.first_read (Value.Str "new"));
            Alcotest.(check bool)
              "second read saw the old value" true
              (Value.equal o.second_read Value.v0);
            Alcotest.(check bool) "not atomic" false o.atomic;
            Alcotest.(check bool) "weakly regular" true o.weakly_regular);
    test "the write-back variant survives the same inversion schedule"
      (fun () ->
        (* abd-max-atomic's reader 1 writes back before returning, so a
           later reader's quorum must intersect it; the deterministic
           inversion above is impossible.  Spot-check via random runs
           plus the explicit construction being rejected: reader 1 of
           abd-max-atomic has pending write-backs, hence the schedule
           in Inversion (which never answers them) cannot even let
           reader 1 return. *)
        let p = params 1 1 3 in
        let sim = Regemu_sim.Sim.create ~n:3 () in
        let writer = Regemu_sim.Sim.new_client sim in
        let r1 = Regemu_sim.Sim.new_client sim in
        let inst =
          Regemu_baselines.Abd_max_atomic.factory.make sim p
            ~writers:[ writer ]
        in
        let objs = Array.of_list (inst.objects ()) in
        let rd1 = inst.read r1 in
        (match
           Regemu_adversary.Script.release_reads sim ~client:r1
             ~objs:[ objs.(0); objs.(1) ]
             ~what:"reader 1"
         with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        (* stepping alone cannot finish the read: it now waits for its
           write-back quorum *)
        match
          Regemu_adversary.Script.step_to_return sim rd1 ~budget:100
            ~what:"rd1"
        with
        | Ok () -> Alcotest.fail "read returned without write-back quorum"
        | Error _ -> ());
  ]

(* --- the (2f+1)k construction achieves regularity beyond
   write-sequential runs (the paper's Section 4 remark) ----------------- *)

let layered_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "layered (2f+1)k construction is weakly regular under concurrent \
            writes"
         ~count:50 arb_seed
         (fun seed ->
           Regularity.is_weak_regular
             (concurrent_history Regemu_baselines.Layered.factory
                (params 2 1 3) ~seed)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "algorithm2 is also weakly regular on these workloads (empirical; \
            the paper only promises WS-Regularity)"
         ~count:50 arb_seed
         (fun seed ->
           Regularity.is_weak_regular
             (concurrent_history Regemu_core.Algorithm2.factory (params 2 1 3)
                ~seed)));
  ]


(* --- timestamp ties under concurrent writers ---------------------------- *)

let tie_tests =
  [
    Alcotest.test_case
      "concurrent writers with equal timestamps resolve consistently" `Quick
      (fun () ->
        (* two writers collect the same (empty) state, both pick ts=1 with
           different payloads; the pair order (ts, payload) must break the
           tie the same way on every server, so the run stays atomic *)
        let p = params 2 1 3 in
        let sim = Regemu_sim.Sim.create ~n:3 () in
        let w1 = Regemu_sim.Sim.new_client sim in
        let w2 = Regemu_sim.Sim.new_client sim in
        let inst =
          Regemu_baselines.Abd_max_atomic.factory.make sim p
            ~writers:[ w1; w2 ]
        in
        let c1 = inst.write w1 (Value.Str "aaa") in
        let c2 = inst.write w2 (Value.Str "zzz") in
        (* interleave the two writes fully *)
        let policy = Regemu_sim.Policy.uniform (Regemu_sim.Rng.create 3) in
        (match
           Regemu_sim.Driver.run_until sim policy ~budget:100_000 (fun () ->
               Regemu_sim.Sim.call_returned c1
               && Regemu_sim.Sim.call_returned c2)
         with
        | Regemu_sim.Driver.Satisfied -> ()
        | o -> Alcotest.failf "writes stalled: %a" Regemu_sim.Driver.outcome_pp o);
        (* two sequential reads agree, and the whole history linearizes *)
        let r1 =
          Regemu_sim.Driver.finish_call_exn sim policy ~budget:100_000
            (inst.read w1)
        in
        let r2 =
          Regemu_sim.Driver.finish_call_exn sim policy ~budget:100_000
            (inst.read w2)
        in
        Alcotest.(check bool) "reads agree" true (Value.equal r1 r2);
        let h = History.of_trace (Regemu_sim.Sim.trace sim) in
        Alcotest.(check bool) "atomic" true (Regularity.is_atomic h));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"equal-timestamp races stay atomic across random schedules"
         ~count:50 arb_seed
         (fun seed ->
           let p = params 2 1 3 in
           let sim = Regemu_sim.Sim.create ~n:3 () in
           let w1 = Regemu_sim.Sim.new_client sim in
           let w2 = Regemu_sim.Sim.new_client sim in
           let inst =
             Regemu_baselines.Abd_max_atomic.factory.make sim p
               ~writers:[ w1; w2 ]
           in
           let c1 = inst.write w1 (Value.Str "aaa") in
           let c2 = inst.write w2 (Value.Str "zzz") in
           let policy = Regemu_sim.Policy.uniform (Regemu_sim.Rng.create seed) in
           (match
              Regemu_sim.Driver.run_until sim policy ~budget:100_000
                (fun () ->
                  Regemu_sim.Sim.call_returned c1
                  && Regemu_sim.Sim.call_returned c2)
            with
           | Regemu_sim.Driver.Satisfied -> ()
           | o ->
               Alcotest.failf "writes stalled: %a" Regemu_sim.Driver.outcome_pp
                 o);
           ignore
             (Regemu_sim.Driver.finish_call_exn sim policy ~budget:100_000
                (inst.read w1));
           Regularity.is_atomic
             (History.of_trace (Regemu_sim.Sim.trace sim))));
  ]

let suites =
  [
    ("regularity:checker", checker_tests);
    ("regularity:agreement", agreement_tests);
    ("regularity:emulations", emulation_tests);
    ("regularity:layered", layered_tests);
    ("regularity:ties", tie_tests);
  ]

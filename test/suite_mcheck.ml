(* Tests for the bounded systematic schedule explorer. *)

open Regemu_bounds
open Regemu_objects
open Regemu_mcheck

let test name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let seq_scenario factory p writer_ops ~readers =
  Explore.emulation_scenario factory p ~mode:Explore.Sequential ~writer_ops
    ~readers ~reads_each:1 ()

let p1 = Params.make_exn ~k:1 ~f:1 ~n:3
let p2 = Params.make_exn ~k:2 ~f:1 ~n:3

let quick_tests =
  [
    test "exhaustive: algorithm2, one write + one read, ALL schedules safe"
      (fun () ->
        let r =
          Explore.run
            (seq_scenario Regemu_core.Algorithm2.factory p1
               [ [ Value.Str "a" ] ] ~readers:1)
            ~max_fired:2_000_000
        in
        Alcotest.(check bool) "exhaustive" true r.exhaustive;
        Alcotest.(check bool) "explored many" true (r.terminal_runs > 10_000);
        Alcotest.(check int) "no stuck states" 0 r.stuck_runs;
        Alcotest.(check int) "safe everywhere" 0
          (List.length r.ws_safe_violations);
        Alcotest.(check int) "regular everywhere" 0
          (List.length r.ws_regular_violations));
    test "exhaustive: abd-max, one write + one read, ALL schedules safe"
      (fun () ->
        let r =
          Explore.run
            (seq_scenario Regemu_baselines.Abd_max.factory p1
               [ [ Value.Str "a" ] ] ~readers:1)
            ~max_fired:2_000_000
        in
        Alcotest.(check bool) "exhaustive" true r.exhaustive;
        Alcotest.(check int) "no violations" 0
          (List.length r.ws_safe_violations));
    test "exhaustive: even naive is safe with a single writer" (fun () ->
        (* the flaw needs a second writer whose values the stale covering
           write can erase *)
        let r =
          Explore.run
            (seq_scenario Regemu_baselines.Naive_reg.factory p1
               [ [ Value.Str "a" ] ] ~readers:1)
            ~max_fired:2_000_000
        in
        Alcotest.(check bool) "exhaustive" true r.exhaustive;
        Alcotest.(check int) "no violations" 0
          (List.length r.ws_safe_violations));
    test "eager mode explores concurrent invocations" (fun () ->
        (* bounded, not exhaustive: sanity that the mode runs and no
           violation appears for algorithm2 in the covered portion *)
        let r =
          Explore.run
            (Explore.emulation_scenario Regemu_core.Algorithm2.factory p1
               ~mode:Explore.Eager
               ~writer_ops:[ [ Value.Str "a" ] ]
               ~readers:1 ~reads_each:1 ())
            ~max_fired:150_000
        in
        Alcotest.(check bool) "found terminals" true (r.terminal_runs > 0);
        Alcotest.(check int) "no violations in covered space" 0
          (List.length r.ws_safe_violations));
    test "wrong writer_ops arity rejected" (fun () ->
        Alcotest.(check bool)
          "raises" true
          (try
             ignore
               (Explore.emulation_scenario Regemu_core.Algorithm2.factory p2
                  ~writer_ops:[ [ Value.Str "a" ] ]
                  ~readers:0 ~reads_each:0 ());
             false
           with Invalid_argument _ -> true));
    test "budget truncation is reported" (fun () ->
        let r =
          Explore.run
            (seq_scenario Regemu_core.Algorithm2.factory p1
               [ [ Value.Str "a" ] ] ~readers:1)
            ~max_fired:500
        in
        Alcotest.(check bool) "not exhaustive" false r.exhaustive);
  ]

let search_tests =
  [
    slow "systematic search rediscovers the Figure 2 violation" (fun () ->
        let r =
          Explore.run
            (seq_scenario Regemu_baselines.Naive_reg.factory p2
               [ [ Value.Str "a" ]; [ Value.Str "b" ] ]
               ~readers:1)
            ~max_fired:2_500_000
        in
        Alcotest.(check bool)
          "violation found" true
          (r.ws_safe_violations <> []);
        (* the violating run is exactly Lemma 4's: the read missed the
           second write *)
        match r.ws_safe_violations with
        | h :: _ -> (
            let reads = Regemu_history.History.reads h in
            match reads with
            | [ rd ] ->
                Alcotest.(check bool)
                  "stale value" true
                  (rd.result = Some (Value.Str "a"))
            | _ -> Alcotest.fail "expected one read")
        | [] -> assert false);
    slow "the same search budget finds nothing against algorithm2" (fun () ->
        let r =
          Explore.run
            (seq_scenario Regemu_core.Algorithm2.factory p2
               [ [ Value.Str "a" ]; [ Value.Str "b" ] ]
               ~readers:1)
            ~max_fired:2_500_000
        in
        Alcotest.(check int) "no violations" 0
          (List.length r.ws_safe_violations
          + List.length r.ws_regular_violations));
  ]

let feature_tests =
  [
    test "distinct histories are far fewer than schedules" (fun () ->
        let r =
          Explore.run
            (seq_scenario Regemu_core.Algorithm2.factory p1
               [ [ Value.Str "a" ] ] ~readers:1)
            ~max_fired:2_000_000
        in
        Alcotest.(check bool) "exhaustive" true r.exhaustive;
        Alcotest.(check bool)
          "collapse" true
          (r.distinct_histories < r.terminal_runs / 100);
        Alcotest.(check bool) "some" true (r.distinct_histories >= 1));
    test "stop_on_violation halts early and reports non-exhaustive"
      (fun () ->
        let r =
          Explore.run ~stop_on_violation:true
            (seq_scenario Regemu_baselines.Naive_reg.factory p2
               [ [ Value.Str "a" ]; [ Value.Str "b" ] ]
               ~readers:1)
            ~max_fired:5_000_000
        in
        Alcotest.(check bool)
          "found" true
          (r.ws_safe_violations <> [] || r.ws_regular_violations <> []);
        Alcotest.(check bool) "not exhaustive" false r.exhaustive;
        (* halting saves work compared to the full budget *)
        Alcotest.(check bool) "halted early" true (r.fired_events < 5_000_000));
  ]

(* --- crash-timing choices --------------------------------------------- *)

let crash_tests =
  [
    test
      "exhaustive incl. crash timing: algorithm2 is f-tolerant on the tiny \
       instance"
      (fun () ->
        let r =
          Explore.run
            (Explore.emulation_scenario Regemu_core.Algorithm2.factory p1
               ~mode:Explore.Sequential ~crashes:1
               ~writer_ops:[ [ Value.Str "a" ] ]
               ~readers:1 ~reads_each:1 ())
            ~max_fired:5_000_000
        in
        Alcotest.(check bool) "exhaustive" true r.exhaustive;
        Alcotest.(check int) "never stuck" 0 r.stuck_runs;
        Alcotest.(check int) "never unsafe" 0
          (List.length r.ws_safe_violations
          + List.length r.ws_regular_violations);
        Alcotest.(check bool) "big space" true (r.terminal_runs > 100_000));
    test "the explorer finds every crash placement that blocks wait-all"
      (fun () ->
        let r =
          Explore.run
            (Explore.emulation_scenario Regemu_baselines.Waitall_reg.factory
               p1 ~mode:Explore.Sequential ~crashes:1
               ~writer_ops:[ [ Value.Str "a" ] ]
               ~readers:0 ~reads_each:0 ())
            ~max_fired:1_000_000
        in
        Alcotest.(check bool) "exhaustive" true r.exhaustive;
        Alcotest.(check bool) "stuck states found" true (r.stuck_runs > 0);
        (* and none of the stuck states is a safety violation: wait-all
           loses liveness, not safety *)
        Alcotest.(check int) "no safety issue" 0
          (List.length r.ws_safe_violations));
    test "crash budget of zero behaves exactly as before" (fun () ->
        let with_c =
          Explore.run
            (Explore.emulation_scenario Regemu_core.Algorithm2.factory p1
               ~mode:Explore.Sequential ~crashes:0
               ~writer_ops:[ [ Value.Str "a" ] ]
               ~readers:1 ~reads_each:1 ())
            ~max_fired:2_000_000
        in
        let without =
          Explore.run
            (seq_scenario Regemu_core.Algorithm2.factory p1
               [ [ Value.Str "a" ] ] ~readers:1)
            ~max_fired:2_000_000
        in
        Alcotest.(check int) "same space" without.terminal_runs
          with_c.terminal_runs);
  ]


let determinism_tests =
  [
    test "exploration is deterministic" (fun () ->
        let run () =
          let r =
            Explore.run
              (seq_scenario Regemu_core.Algorithm2.factory p1
                 [ [ Value.Str "a" ] ] ~readers:1)
              ~max_fired:300_000
          in
          ( r.terminal_runs, r.distinct_histories, r.fired_events,
            r.max_depth )
        in
        Alcotest.(check bool) "equal" true (run () = run ()));
  ]

let suites =
  [
    ("mcheck:exhaustive", quick_tests);
    ("mcheck:search", search_tests);
    ("mcheck:features", feature_tests);
    ("mcheck:crashes", crash_tests);
    ("mcheck:determinism", determinism_tests);
  ]

(* Tests for the hostile-network layer and the nemesis campaign
   machinery: config validation, seed determinism, the retry/backoff
   path under forced message loss, fail-fast unavailability, and the
   persist/amnesia recovery split. *)

open Regemu_objects
open Regemu_live
open Regemu_chaos

let test name f = Alcotest.test_case name `Quick f
let value = Alcotest.testable Value.pp Value.equal

let expect_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

(* a fast-retrying cluster for the loss tests *)
let quick_retry =
  { Retry.base_s = 0.02; cap_s = 0.15; deadline_s = 8.0; grace_s = 0.1 }

let mk_cluster ?(recovery = Recovery.Persist) ?(retry = quick_retry)
    ?(dup_prob = 0.0) ~seed () =
  Cluster.create
    {
      Cluster.n = 3;
      transport =
        {
          Transport.couriers = 2;
          delay_prob = 0.0;
          max_delay_us = 0;
          dup_prob;
          drop_prob = 0.0;
          reorder = true;
          sharded = true;
          backend = Transport.Threads;
          seed;
        };
      op_timeout_s = 20.0;
      recovery;
      retry = Some retry;
      hedge = None;
      deadline = None;
    }

let check_clean what (r : Checker.result) =
  match r.ws with
  | Regemu_history.Ws_check.Violated v ->
      Alcotest.failf "%s: WS-Regularity violated: %a" what
        Regemu_history.Ws_check.violation_pp v
  | Holds | Vacuous -> ()

(* --- construction-time validation --------------------------------------- *)

let validation_tests =
  [
    test "transport rejects out-of-range probabilities" (fun () ->
        let mk cfg = ignore (Transport.create cfg ~servers:1 ~deliver:ignore) in
        let base = Transport.default_config ~seed:1 in
        expect_invalid "drop_prob 1.5" (fun () ->
            mk { base with drop_prob = 1.5 });
        expect_invalid "dup_prob -0.1" (fun () ->
            mk { base with dup_prob = -0.1 });
        expect_invalid "delay_prob nan" (fun () ->
            mk { base with delay_prob = Float.nan });
        expect_invalid "couriers 0" (fun () -> mk { base with couriers = 0 });
        expect_invalid "max_delay_us < 0" (fun () ->
            mk { base with max_delay_us = -1 }));
    test "split rejects malformed partitions" (fun () ->
        let tr =
          Transport.create (Transport.default_config ~seed:2) ~servers:3
            ~deliver:ignore
        in
        expect_invalid "overlapping groups" (fun () ->
            Transport.split tr ~groups:[ [ 0; 1 ]; [ 1; 2 ] ] ~clients_with:0);
        expect_invalid "negative server" (fun () ->
            Transport.split tr ~groups:[ [ -1 ] ] ~clients_with:0);
        expect_invalid "clients_with out of range" (fun () ->
            Transport.split tr ~groups:[ [ 0 ]; [ 1 ] ] ~clients_with:2);
        expect_invalid "set_drop 2.0" (fun () ->
            Transport.set_drop tr ~requests:2.0 ()));
    test "retry config is validated" (fun () ->
        expect_invalid "cap < base" (fun () ->
            Retry.validate { quick_retry with cap_s = 0.001 });
        expect_invalid "non-positive base" (fun () ->
            Retry.validate { quick_retry with base_s = 0.0 });
        expect_invalid "non-positive deadline" (fun () ->
            Retry.validate { quick_retry with deadline_s = -1.0 }));
    test "fault injector rejects unservable configs" (fun () ->
        let cluster = mk_cluster ~seed:3 () in
        expect_invalid "pool < 2f+1" (fun () ->
            Fault.spawn cluster { (Fault.default_config ~f:1 ~pool:2 ~seed:4) with pool = 2 });
        expect_invalid "leave_crashed > f" (fun () ->
            Fault.spawn cluster
              { (Fault.default_config ~f:1 ~pool:3 ~seed:4) with leave_crashed = 2 });
        Cluster.shutdown cluster);
    test "schedules are validated against the cluster size" (fun () ->
        expect_invalid "server out of range" (fun () ->
            Schedule.validate ~n:3 [ { Schedule.at_ms = 0; ev = Crash 3 } ]);
        expect_invalid "negative time" (fun () ->
            Schedule.validate ~n:3 [ { Schedule.at_ms = -5; ev = Heal } ]);
        expect_invalid "drop rate > 1" (fun () ->
            Schedule.validate ~n:3 [ { Schedule.at_ms = 0; ev = Drop_rate 1.2 } ]);
        expect_invalid "overlapping partition groups" (fun () ->
            Schedule.validate ~n:3
              [ { Schedule.at_ms = 0; ev = Partition [ [ 0; 1 ]; [ 1 ] ] } ]);
        expect_invalid "beyond_f reach out of range" (fun () ->
            ignore (Schedule.beyond_f ~n:3 ~reach:3 ~at_ms:0 ~heal_at_ms:10)));
  ]

(* --- seed determinism ---------------------------------------------------- *)

let determinism_tests =
  [
    test "flapping schedules replay from their seed" (fun () ->
        let a = Schedule.flapping ~n:3 ~flips:6 ~gap_ms:50 ~seed:9 in
        let b = Schedule.flapping ~n:3 ~flips:6 ~gap_ms:50 ~seed:9 in
        let c = Schedule.flapping ~n:3 ~flips:6 ~gap_ms:50 ~seed:10 in
        Alcotest.(check bool) "same seed, same schedule" true (a = b);
        Alcotest.(check bool) "different seed, different schedule" true
          (a <> c);
        Schedule.validate ~n:3 a;
        Alcotest.(check int) "never exceeds one down" 1 (Schedule.max_down a));
    test "generators respect the fault bound" (fun () ->
        Alcotest.(check int) "rolling crashes: one at a time" 1
          (Schedule.max_down (Schedule.rolling_crashes ~n:3 ~rounds:2 ()));
        Alcotest.(check int) "wipe_all: one at a time" 1
          (Schedule.max_down (Schedule.wipe_all ~n:3 ()));
        Alcotest.(check bool) "durations are positive" true
          (Schedule.duration_ms (Schedule.wipe_all ~n:3 ()) > 0));
    test "a campaign scenario replays its fault counters" (fun () ->
        let s = List.hd (Campaign.smoke ~seed:5) in
        let o1 = Campaign.run s in
        let o2 = Campaign.run s in
        Alcotest.(check bool) "first run passes" true o1.Campaign.pass;
        Alcotest.(check bool) "second run passes" true o2.Campaign.pass;
        let nem o =
          List.map (fun p -> p.Campaign.nemesis) o.Campaign.phases
        in
        Alcotest.(check bool) "identical nemesis counters" true
          (nem o1 = nem o2);
        let completions o =
          List.map (fun p -> (p.Campaign.completed, p.Campaign.failed))
            o.Campaign.phases
        in
        Alcotest.(check bool) "identical completion counts" true
          (completions o1 = completions o2);
        Alcotest.(check int) "identical crash count"
          o1.Campaign.stats.Cluster.crashes o2.Campaign.stats.Cluster.crashes;
        Alcotest.(check int) "identical wipe count"
          o1.Campaign.stats.Cluster.wipes o2.Campaign.stats.Cluster.wipes);
  ]

(* --- the retry layer under forced loss ----------------------------------- *)

let run_loss_test ~seed ~drop =
  let cluster = mk_cluster ~seed () in
  let abd = Abd_live.create cluster ~f:1 () in
  let w = Cluster.new_client cluster in
  Cluster.start cluster;
  let checker = Checker.spawn cluster () in
  Abd_live.write abd w (Value.Str "before-loss");
  (match drop with
  | `Requests -> Cluster.set_drop cluster ~requests:1.0 ()
  | `Replies -> Cluster.set_drop cluster ~replies:1.0 ());
  let finished = Atomic.make false in
  let t =
    Thread.create
      (fun () ->
        Abd_live.write abd w (Value.Str "through-loss");
        Atomic.set finished true)
      ()
  in
  Thread.delay 0.15;
  Alcotest.(check bool)
    "op still blocked under total loss" false (Atomic.get finished);
  Cluster.set_drop cluster ~requests:0.0 ~replies:0.0 ();
  Thread.join t;
  Alcotest.(check bool) "op completed once loss healed" true
    (Atomic.get finished);
  let res = Checker.stop checker in
  let stats = Cluster.stats cluster in
  Cluster.shutdown cluster;
  check_clean "loss run" res;
  Alcotest.(check bool) "messages were dropped" true
    (stats.Cluster.msgs_dropped > 0);
  Alcotest.(check bool) "the client retransmitted" true
    (stats.Cluster.retries > 0)

let retry_tests =
  [
    test "a dropped request is retransmitted to completion" (fun () ->
        run_loss_test ~seed:21 ~drop:`Requests);
    test "a dropped reply is recovered by retransmission" (fun () ->
        run_loss_test ~seed:22 ~drop:`Replies);
    test "duplicate replies never double-count" (fun () ->
        let cluster = mk_cluster ~seed:23 ~dup_prob:1.0 () in
        let abd = Abd_live.create cluster ~f:1 () in
        let w = Cluster.new_client cluster in
        let r = Cluster.new_client cluster in
        Cluster.start cluster;
        let checker = Checker.spawn cluster () in
        for i = 1 to 15 do
          Abd_live.write abd w (Value.Str (Printf.sprintf "dup-%d" i));
          ignore (Abd_live.read abd r)
        done;
        let res = Checker.stop checker in
        let stats = Cluster.stats cluster in
        Cluster.shutdown cluster;
        check_clean "duplication run" res;
        Alcotest.(check int) "every op completed" 30
          stats.Cluster.ops_completed;
        Alcotest.(check bool) "replies really were duplicated" true
          (stats.Cluster.msgs_duplicated > 0));
    test "deadline exceeded under total blackout, then recovery" (fun () ->
        let retry = { quick_retry with deadline_s = 0.3; grace_s = 5.0 } in
        let cluster = mk_cluster ~seed:24 ~retry () in
        let abd = Abd_live.create cluster ~f:1 () in
        let w = Cluster.new_client cluster in
        Cluster.start cluster;
        let checker = Checker.spawn cluster () in
        Cluster.set_drop cluster ~requests:1.0 ~replies:1.0 ();
        (match Abd_live.write abd w (Value.Str "doomed") with
        | () -> Alcotest.fail "expected Unavailable under total blackout"
        | exception Cluster.Unavailable u ->
            (match u.Cluster.cause with
            | Cluster.Deadline_exceeded -> ()
            | Cluster.Quorum_lost ->
                Alcotest.fail "expected Deadline_exceeded, got Quorum_lost");
            Alcotest.(check bool) "failed only after the deadline" true
              (u.Cluster.elapsed_s >= 0.3));
        Cluster.set_drop cluster ~requests:0.0 ~replies:0.0 ();
        Abd_live.write abd w (Value.Str "revived");
        let res = Checker.stop checker in
        Cluster.shutdown cluster;
        check_clean "blackout run" res);
    test "beyond-f partition fails fast with Quorum_lost" (fun () ->
        let cluster = mk_cluster ~seed:25 () in
        let abd = Abd_live.create cluster ~f:1 () in
        let w = Cluster.new_client cluster in
        Cluster.start cluster;
        let checker = Checker.spawn cluster () in
        Abd_live.write abd w (Value.Str "reachable");
        (* clients keep only server 0: 1 < f+1 = 2 reachable *)
        Cluster.split cluster ~groups:[ [ 0 ]; [ 1; 2 ] ] ~clients_with:0;
        let t0 = Unix.gettimeofday () in
        (match Abd_live.write abd w (Value.Str "unreachable") with
        | () -> Alcotest.fail "expected Unavailable beyond f"
        | exception Cluster.Unavailable u ->
            (match u.Cluster.cause with
            | Cluster.Quorum_lost -> ()
            | Cluster.Deadline_exceeded ->
                Alcotest.fail "expected Quorum_lost, got Deadline_exceeded");
            Alcotest.(check int) "one server reachable" 1 u.Cluster.reachable;
            Alcotest.(check int) "quorum needs two" 2 u.Cluster.required);
        Alcotest.(check bool) "failed fast, not at the deadline" true
          (Unix.gettimeofday () -. t0 < 2.0);
        Cluster.heal cluster;
        Abd_live.write abd w (Value.Str "healed");
        let res = Checker.stop checker in
        let stats = Cluster.stats cluster in
        Cluster.shutdown cluster;
        check_clean "partition run" res;
        Alcotest.(check bool) "cut messages counted" true
          (stats.Cluster.msgs_cut > 0);
        Alcotest.(check bool) "unavailability counted" true
          (stats.Cluster.unavailable > 0));
  ]

(* --- crash-recovery modes ------------------------------------------------ *)

let wipe_everyone cluster =
  (* one server down at a time: within the fault bound throughout *)
  for s = 0 to 2 do
    Cluster.crash cluster s;
    Cluster.restart cluster s
  done

let recovery_tests =
  [
    test "persist: state survives a rolling restart of every server"
      (fun () ->
        let cluster = mk_cluster ~recovery:Recovery.Persist ~seed:26 () in
        let abd = Abd_live.create cluster ~f:1 () in
        let w = Cluster.new_client cluster in
        let r = Cluster.new_client cluster in
        Cluster.start cluster;
        let checker = Checker.spawn cluster () in
        Abd_live.write abd w (Value.Str "durable");
        wipe_everyone cluster;
        Alcotest.(check value) "read returns the written value"
          (Value.Str "durable") (Abd_live.read abd r);
        let res = Checker.stop checker in
        let stats = Cluster.stats cluster in
        Cluster.shutdown cluster;
        check_clean "persist run" res;
        Alcotest.(check int) "no store was wiped" 0 stats.Cluster.wipes);
    test "amnesia: the same schedule loses the write and is flagged"
      (fun () ->
        let cluster = mk_cluster ~recovery:Recovery.Amnesia ~seed:27 () in
        let abd = Abd_live.create cluster ~f:1 () in
        let w = Cluster.new_client cluster in
        let r = Cluster.new_client cluster in
        Cluster.start cluster;
        let checker = Checker.spawn cluster () in
        Abd_live.write abd w (Value.Str "volatile");
        wipe_everyone cluster;
        Alcotest.(check value) "read returns the initial value" Value.v0
          (Abd_live.read abd r);
        let res = Checker.stop checker in
        let stats = Cluster.stats cluster in
        Cluster.shutdown cluster;
        Alcotest.(check int) "every store was wiped" 3 stats.Cluster.wipes;
        match res.Checker.ws with
        | Regemu_history.Ws_check.Violated _ -> ()
        | Holds | Vacuous ->
            Alcotest.fail "checker should flag the amnesiac stale read");
  ]

let suites =
  [
    ("chaos.validation", validation_tests);
    ("chaos.determinism", determinism_tests);
    ("chaos.retry", retry_tests);
    ("chaos.recovery", recovery_tests);
  ]

(* Tests for the reusable Ad_i policy: the covering staircase appears
   under ordinary scenario driving, not just the bespoke Lemma 1
   runner. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_adversary

let test name f = Alcotest.test_case name `Quick f

let default_f_set (p : Params.t) =
  Id.Server.set_of_list
    (List.init (p.f + 1) (fun i -> Id.Server.of_int (p.n - 1 - i)))

let drive_writes factory (p : Params.t) ~seed =
  let sim = Sim.create ~n:p.n () in
  let writers = List.init p.k (fun _ -> Sim.new_client sim) in
  let instance = factory.Regemu_core.Emulation.make sim p ~writers in
  let adi = Adi_policy.create sim ~f_set:(default_f_set p) ~rng:(Rng.create seed) in
  let policy = Adi_policy.policy adi in
  List.iteri
    (fun i w ->
      ignore
        (Driver.finish_call_exn sim policy ~budget:200_000
           (instance.write w (Value.Str (Fmt.str "v%d" i)))))
    writers;
  (sim, adi)

let adi_tests =
  [
    test "algorithm2 completes k writes under the Ad_i policy" (fun () ->
        let p = Params.make_exn ~k:4 ~f:2 ~n:7 in
        let _, adi = drive_writes Regemu_core.Algorithm2.factory p ~seed:5 in
        Alcotest.(check int) "epochs" p.Params.k (Adi_policy.epochs_completed adi));
    test "coverage reaches at least kf" (fun () ->
        let p = Params.make_exn ~k:4 ~f:2 ~n:7 in
        let _, adi = drive_writes Regemu_core.Algorithm2.factory p ~seed:5 in
        if Adi_policy.covered adi < p.Params.k * p.Params.f then
          Alcotest.failf "covered %d < kf=%d" (Adi_policy.covered adi)
            (p.Params.k * p.Params.f));
    test "no covered register lands on F" (fun () ->
        let p = Params.make_exn ~k:3 ~f:1 ~n:5 in
        let sim, _ = drive_writes Regemu_core.Algorithm2.factory p ~seed:9 in
        let f_set = default_f_set p in
        Id.Obj.Set.iter
          (fun b ->
            if Id.Server.Set.mem (Sim.delta sim b) f_set then
              Alcotest.failf "covered register %a on F" Id.Obj.pp b)
          (Sim.covered_objects sim));
    test "reads still complete between adversarial writes" (fun () ->
        let p = Params.make_exn ~k:2 ~f:1 ~n:4 in
        let sim = Sim.create ~n:p.Params.n () in
        let writers = List.init p.Params.k (fun _ -> Sim.new_client sim) in
        let instance = Regemu_core.Algorithm2.factory.make sim p ~writers in
        let adi =
          Adi_policy.create sim ~f_set:(default_f_set p) ~rng:(Rng.create 3)
        in
        let policy = Adi_policy.policy adi in
        ignore
          (Driver.finish_call_exn sim policy ~budget:100_000
             (instance.write (List.hd writers) (Value.Str "a")));
        let reader = Sim.new_client sim in
        let v =
          Driver.finish_call_exn sim policy ~budget:100_000
            (instance.read reader)
        in
        Alcotest.(check bool) "a" true (Value.equal v (Value.Str "a")));
    test "wait-all gets stuck under the policy (not f-tolerant)" (fun () ->
        let p = Params.make_exn ~k:1 ~f:1 ~n:3 in
        let sim = Sim.create ~n:3 () in
        let w = Sim.new_client sim in
        let instance =
          Regemu_baselines.Waitall_reg.factory.make sim p ~writers:[ w ]
        in
        let adi =
          Adi_policy.create sim ~f_set:(default_f_set p) ~rng:(Rng.create 1)
        in
        let call = instance.write w (Value.Int 1) in
        match
          Driver.finish_call sim (Adi_policy.policy adi) ~budget:50_000 call
        with
        | Error Driver.Stuck -> ()
        | Ok _ -> Alcotest.fail "wait-all should not survive Ad_i"
        | Error o -> Alcotest.failf "expected Stuck, got %a" Driver.outcome_pp o);
  ]

(* --- Lemma 3, executed: the blocked run is indistinguishable from a
   crash run, where f-tolerance forces the write to return ------------- *)

let lemma3_tests =
  [
    test "branching a blocked run into a crash run still completes the write"
      (fun () ->
        let p = Params.make_exn ~k:1 ~f:1 ~n:4 in
        let build () =
          let sim = Sim.create ~n:p.Params.n () in
          let w = Sim.new_client sim in
          let instance =
            Regemu_core.Algorithm2.factory.make sim p ~writers:[ w ]
          in
          let call = instance.write w (Value.Str "v") in
          (sim, call)
        in
        (* Run A: drive under Ad_i, recording, until the write phase has
           all its low-level writes outstanding (none responded). *)
        let sim_a, call_a = build () in
        let adi =
          Adi_policy.create sim_a ~f_set:(default_f_set p)
            ~rng:(Rng.create 21)
        in
        let rec_policy, log =
          Regemu_workload.Replay.recording (Adi_policy.policy adi)
        in
        let write_phase_open () =
          (not (Sim.call_returned call_a))
          && List.length
               (List.filter
                  (fun (pd : Sim.pending_info) ->
                    match pd.op with
                    | Regemu_objects.Base_object.Write _ -> true
                    | _ -> false)
                  (Sim.pending sim_a))
             >= 3
          (* |R_0| = zf+f+1 with z=2: 4 registers; >=3 outstanding *)
        in
        (match
           Driver.run_until sim_a rec_policy ~budget:10_000 write_phase_open
         with
        | Driver.Satisfied -> ()
        | o -> Alcotest.failf "never reached the write phase: %a" Driver.outcome_pp o);
        (* Branch (a): continue under Ad_i — Lemma 3 says it returns. *)
        (match
           Driver.finish_call sim_a (Adi_policy.policy adi) ~budget:50_000
             call_a
         with
        | Ok _ -> ()
        | Error o -> Alcotest.failf "Ad_i branch: %a" Driver.outcome_pp o);
        (* Branch (b): rebuild, replay the same prefix, then crash a
           server holding an outstanding write and finish FAIRLY. *)
        let sim_b, call_b = build () in
        (match Regemu_workload.Replay.replay sim_b log with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        Alcotest.(check bool)
          "prefix left the write open" false
          (Sim.call_returned call_b);
        let victim =
          match
            List.find_opt
              (fun (pd : Sim.pending_info) ->
                match pd.op with
                | Regemu_objects.Base_object.Write _ -> true
                | _ -> false)
              (Sim.pending sim_b)
          with
          | Some pd -> Sim.delta sim_b pd.obj
          | None -> Alcotest.fail "no outstanding write after replay"
        in
        Sim.crash_server sim_b victim;
        match
          Driver.finish_call sim_b
            (Policy.uniform (Rng.create 5))
            ~budget:50_000 call_b
        with
        | Ok _ -> ()
        | Error o ->
            Alcotest.failf
              "crash branch did not complete (f-tolerance violated): %a"
              Driver.outcome_pp o);
  ]

let suites = [ ("adi-policy", adi_tests); ("adi-policy:lemma3", lemma3_tests) ]

(* Tests for the systematic-exploration layer: the DPOR engine
   (lib/mcheck/dpor.ml) against brute force, the regemu-cert/1
   certificate, the coverage bitmap, and the coverage-guided fuzzer
   against the committed regression corpus under test/corpus/. *)

open Regemu_bounds
open Regemu_objects
open Regemu_mcheck
open Regemu_explore

let test name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let qcheck ~name ~count arb p =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb p)

(* Params.make enforces n >= 2f+1 and f >= 1, so the smallest legal
   config is (k=1, f=1, n=3) — the issue's "n=2" does not exist in
   this model. *)
let p1 = Params.make_exn ~k:1 ~f:1 ~n:3
let p2 = Params.make_exn ~k:2 ~f:1 ~n:3

let scenario ?(mode = Explore.Sequential) ?(p = p1) factory ~writer_ops
    ~readers ~reads_each () =
  Explore.emulation_scenario factory p ~mode ~writer_ops ~readers ~reads_each
    ()

(* DPOR must reach exactly the terminal/verdict states brute force
   reaches, while executing no more transitions. *)
let check_dpor_vs_brute name factory ~writer_ops ~readers ~reads_each
    ~max_explored =
  let sc () = scenario factory ~writer_ops ~readers ~reads_each () in
  let d = Dpor.run ~check_invariants:false (sc ()) ~max_explored in
  let b =
    Dpor.run ~dpor:false ~sleep:false ~check_invariants:false (sc ())
      ~max_explored
  in
  Alcotest.(check bool) (name ^ ": dpor exhaustive") true d.Dpor.exhaustive;
  Alcotest.(check bool) (name ^ ": brute exhaustive") true b.Dpor.exhaustive;
  Alcotest.(check (list string))
    (name ^ ": identical terminal states")
    b.Dpor.state_fingerprints d.Dpor.state_fingerprints;
  Alcotest.(check bool)
    (name ^ ": dpor explores a subset")
    true
    (d.Dpor.explored <= b.Dpor.explored);
  (d, b)

let dpor_tests =
  [
    slow "dpor = brute force terminal states (algorithm2, 1w+1r)" (fun () ->
        let d, b =
          check_dpor_vs_brute "alg2" Regemu_core.Algorithm2.factory
            ~writer_ops:[ [ Value.Str "a" ] ]
            ~readers:1 ~reads_each:1 ~max_explored:3_000_000
        in
        Alcotest.(check bool)
          "dpor strictly smaller" true
          (d.Dpor.explored < b.Dpor.explored);
        Alcotest.(check int) "no ws-safe violations" 0 d.Dpor.ws_safe_violations;
        Alcotest.(check int)
          "no ws-regular violations" 0 d.Dpor.ws_regular_violations);
    slow "dpor = brute force terminal states (abd-max, 1w+1r)" (fun () ->
        ignore
          (check_dpor_vs_brute "abd" Regemu_baselines.Abd_max.factory
             ~writer_ops:[ [ Value.Str "a" ] ]
             ~readers:1 ~reads_each:1 ~max_explored:3_000_000));
    qcheck ~name:"dpor = brute force on random tiny scenarios" ~count:3
      QCheck.(
        pair (bool : bool arbitrary) (string_gen_of_size (Gen.return 3) Gen.printable))
      (fun (use_alg2, v) ->
        let factory =
          if use_alg2 then Regemu_core.Algorithm2.factory
          else Regemu_baselines.Abd_max.factory
        in
        let d, _ =
          check_dpor_vs_brute "qcheck" factory
            ~writer_ops:[ [ Value.Str v ] ]
            ~readers:1 ~reads_each:1 ~max_explored:3_000_000
        in
        d.Dpor.ws_safe_violations = 0 && d.Dpor.ws_regular_violations = 0);
    test "eager mode distinguishes read-old from read-new" (fun () ->
        let r =
          Dpor.run ~check_invariants:false
            (scenario Regemu_baselines.Abd_max.factory ~mode:Explore.Eager
               ~writer_ops:[ [ Value.Str "a" ] ]
               ~readers:1 ~reads_each:1 ())
            ~max_explored:500_000
        in
        Alcotest.(check bool) "exhaustive" true r.Dpor.exhaustive;
        Alcotest.(check bool)
          "a concurrent read reaches at least two outcomes" true
          (r.Dpor.distinct_states >= 2);
        Alcotest.(check int) "clean" 0
          (r.Dpor.ws_safe_violations + r.Dpor.ws_regular_violations));
    test "dpor finds the naive-register violations" (fun () ->
        let r =
          Dpor.run ~check_invariants:false
            (scenario Regemu_baselines.Naive_reg.factory ~p:p2
               ~writer_ops:[ [ Value.Str "a" ]; [ Value.Str "b" ] ]
               ~readers:1 ~reads_each:1 ())
            ~max_explored:2_000_000
        in
        Alcotest.(check bool) "exhaustive" true r.Dpor.exhaustive;
        Alcotest.(check bool)
          "ws-safe violations found" true
          (r.Dpor.ws_safe_violations > 0);
        Alcotest.(check bool)
          "a witness is reported" true
          (r.Dpor.first_violation <> None));
    test "pruning is substantial on the certificate config" (fun () ->
        (* the acceptance config: 1 writer x 2 ops, 1 reader x 2 reads *)
        let r =
          Dpor.run ~check_invariants:false
            (scenario Regemu_baselines.Abd_max.factory
               ~writer_ops:[ [ Value.Str "a"; Value.Str "b" ] ]
               ~readers:1 ~reads_each:2 ())
            ~max_explored:30_000_000
        in
        Alcotest.(check bool) "exhaustive" true r.Dpor.exhaustive;
        let ratio =
          float_of_int r.Dpor.pruned
          /. float_of_int (r.Dpor.pruned + r.Dpor.explored)
        in
        Alcotest.(check bool)
          (Fmt.str "pruning ratio %.3f >= 0.3" ratio)
          true (ratio >= 0.3));
  ]

(* --- regemu-cert/1 ------------------------------------------------------- *)

let abd_cert () =
  let stats =
    Dpor.run ~check_invariants:false
      (scenario Regemu_baselines.Abd_max.factory
         ~writer_ops:[ [ Value.Str "a" ] ]
         ~readers:1 ~reads_each:1 ())
      ~max_explored:500_000
  in
  Cert.make
    ~config:
      {
        Cert.algo = "abd-max";
        k = 1;
        f = 1;
        n = 3;
        mode = "sequential";
        writer_ops = [ 1 ];
        readers = 1;
        reads_each = 1;
        crashes = 0;
        max_explored = 500_000;
      }
    ~dpor:true ~sleep:true stats

let cert_tests =
  [
    test "certificate round-trips through JSON and validates" (fun () ->
        let cert = abd_cert () in
        Alcotest.(check string) "verdict" "verified-clean" cert.Cert.verdict;
        (match Cert.validate cert with
        | Ok () -> ()
        | Error m -> Alcotest.failf "fresh certificate invalid: %s" m);
        match Cert.of_json (Cert.to_json cert) with
        | Error m -> Alcotest.failf "round-trip failed: %s" m
        | Ok c ->
            Alcotest.(check bool) "round-trip is lossless" true (c = cert));
    test "validation rejects tampered counters" (fun () ->
        let cert = abd_cert () in
        let tampered = { cert with Cert.pruned = cert.Cert.pruned + 1 } in
        (match Cert.validate tampered with
        | Ok () -> Alcotest.fail "tampered floor accepted"
        | Error _ -> ());
        let lying = { cert with Cert.verdict = "violations-found" } in
        match Cert.validate lying with
        | Ok () -> Alcotest.fail "lying verdict accepted"
        | Error _ -> ());
    test "of_json rejects wrong schema and missing fields" (fun () ->
        (match Cert.of_json (Regemu_obs.Json.Obj [ ("schema", Regemu_obs.Json.Str "nope/9") ]) with
        | Ok _ -> Alcotest.fail "wrong schema accepted"
        | Error _ -> ());
        match Cert.of_json (Regemu_obs.Json.Obj [ ("schema", Regemu_obs.Json.Str "regemu-cert/1") ]) with
        | Ok _ -> Alcotest.fail "empty certificate accepted"
        | Error _ -> ());
  ]

(* --- coverage bitmap ----------------------------------------------------- *)

let coverage_tests =
  [
    test "first run sets edges, identical rerun sets none" (fun () ->
        let c = Coverage.create () in
        let sites = [| 1; 2; 3; 2; 1 |] in
        let fresh = Coverage.add_run c ~sites in
        Alcotest.(check bool) "first run is novel" true (fresh > 0);
        Alcotest.(check int) "covered = fresh" fresh (Coverage.covered c);
        Alcotest.(check int) "identical rerun adds nothing" 0
          (Coverage.add_run c ~sites);
        let fresh2 = Coverage.add_run c ~sites:[| 3; 2; 1 |] in
        Alcotest.(check bool) "reversed order is a different edge set" true
          (fresh2 > 0));
    test "empty run covers nothing" (fun () ->
        let c = Coverage.create () in
        Alcotest.(check int) "no sites, no edges" 0
          (Coverage.add_run c ~sites:[||]);
        Alcotest.(check (float 1e-9)) "ratio 0" 0.0 (Coverage.ratio c));
  ]

(* --- coverage-guided fuzzing against the committed corpus ---------------- *)

let corpus_file name =
  if Sys.file_exists (Filename.concat "corpus" name) then
    Filename.concat "corpus" name (* dune runtest cwd *)
  else Filename.concat "test/corpus" name (* repo root *)

let corpus_files =
  [
    corpus_file "stall.json";
    corpus_file "fullpass-online.json";
    corpus_file "fullpass-online-stall.json";
  ]

let truncated a =
  let n = Array.length a in
  Array.sub a 0 (2 * n / 3)

let cgfuzz_tests =
  let open Regemu_dst in
  List.map
    (fun file ->
      test (Fmt.str "cg fuzzing rediscovers %s" (Filename.basename file))
        (fun () ->
          match Dst_fuzz.read_replay file with
          | Error m -> Alcotest.failf "%s: %s" file m
          | Ok spec ->
              (* the committed counterexample must still reproduce *)
              let r = Dst_fuzz.replay spec in
              Alcotest.(check bool)
                (file ^ ": replay reproduces the recorded verdict")
                true (Dst_fuzz.replay_matched r);
              let key = Dst_fuzz.failure_key r.Dst_fuzz.outcome in
              Alcotest.(check bool) "the corpus entry fails" true (key <> []);
              (* seed the fuzzer with a truncated prefix of the witness
                 trace: it must search its way back to the same
                 violation kind within a small budget.  Quiet keeps the
                 committed config (nemesis included) exactly as is. *)
              let report =
                Cgfuzz.fuzz
                  ~init:[ truncated spec.Dst_fuzz.r_choices ]
                  ~profile:Dst_fuzz.Quiet ~base:spec.Dst_fuzz.r_cfg ~budget:80
                  ()
              in
              Alcotest.(check bool)
                (Fmt.str "%s: kind [%s] rediscovered in %d runs" file
                   (String.concat "," key) report.Cgfuzz.runs)
                true
                (Cgfuzz.found report key)))
    corpus_files
  @ [
      test "cg fuzzing is deterministic in (config, budget)" (fun () ->
          let base =
            {
              (Dst.default_config ~seed:11) with
              Dst.readers = 1;
              ops_per_client = 3;
            }
          in
          let run () =
            Cgfuzz.fuzz ~profile:Dst_fuzz.Quiet ~base ~budget:40 ()
          in
          let a = run () and b = run () in
          Alcotest.(check int) "same schedules" a.Cgfuzz.schedules
            b.Cgfuzz.schedules;
          Alcotest.(check int) "same edges" a.Cgfuzz.edges b.Cgfuzz.edges;
          Alcotest.(check int) "same corpus" (List.length a.Cgfuzz.corpus)
            (List.length b.Cgfuzz.corpus);
          Alcotest.(check bool) "same violation keys" true
            (Cgfuzz.violation_keys a = Cgfuzz.violation_keys b));
      test "a quiet burst finds no violations and grows the corpus" (fun () ->
          let base =
            {
              (Dst.default_config ~seed:5) with
              Dst.readers = 1;
              ops_per_client = 3;
            }
          in
          let r = Cgfuzz.fuzz ~profile:Dst_fuzz.Quiet ~base ~budget:60 () in
          Alcotest.(check int) "budget spent exactly" 60 r.Cgfuzz.runs;
          Alcotest.(check (list (list string))) "clean" []
            (Cgfuzz.violation_keys r);
          Alcotest.(check bool) "corpus grew beyond the bootstrap" true
            (List.length r.Cgfuzz.corpus > 1));
    ]

let suites =
  [
    ("explore.dpor", dpor_tests);
    ("explore.cert", cert_tests);
    ("explore.coverage", coverage_tests);
    ("explore.cgfuzz", cgfuzz_tests);
  ]

(* Tests for schedule recording, replay, and end-to-end determinism. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_workload

let test name f = Alcotest.test_case name `Quick f

(* a system with all invocations issued up front, so replay needs no
   re-invocation logic *)
let build_invoked p ~seed:_ =
  let sim = Sim.create ~n:p.Params.n () in
  let writers = List.init p.Params.k (fun _ -> Sim.new_client sim) in
  let inst = Regemu_core.Algorithm2.factory.make sim p ~writers in
  let reader = Sim.new_client sim in
  let calls =
    List.mapi (fun i w -> inst.write w (Value.Int i)) writers
    @ [ inst.read reader ]
  in
  (sim, calls)

let p = Params.make_exn ~k:2 ~f:1 ~n:4

let replay_tests =
  [
    test "recorded schedule replays to the identical trace" (fun () ->
        let sim1, calls1 = build_invoked p ~seed:3 in
        let policy, log = Replay.recording (Policy.uniform (Rng.create 3)) in
        (match
           Driver.run_until sim1 policy ~budget:100_000 (fun () ->
               List.for_all Sim.call_returned calls1)
         with
        | Driver.Satisfied -> ()
        | o -> Alcotest.failf "drive failed: %a" Driver.outcome_pp o);
        Alcotest.(check bool) "log non-empty" true (Replay.length log > 0);
        let sim2, calls2 = build_invoked p ~seed:3 in
        (match Replay.replay sim2 log with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        Alcotest.(check bool)
          "all ops returned on replay" true
          (List.for_all Sim.call_returned calls2);
        (* identical traces entry for entry *)
        let render sim =
          List.map
            (fun e -> Fmt.str "%a" Trace.entry_pp e)
            (Trace.to_list (Sim.trace sim))
        in
        Alcotest.(check (list string)) "traces" (render sim1) (render sim2));
    test "replay on a differently-built system diverges with a message"
      (fun () ->
        let sim1, calls1 = build_invoked p ~seed:3 in
        let policy, log = Replay.recording (Policy.uniform (Rng.create 3)) in
        ignore
          (Driver.run_until sim1 policy ~budget:100_000 (fun () ->
               List.for_all Sim.call_returned calls1));
        (* different parameters => different object ids => divergence *)
        let sim2, _ = build_invoked (Params.make_exn ~k:1 ~f:1 ~n:3) ~seed:3 in
        match Replay.replay sim2 log with
        | Error e ->
            Alcotest.(check bool)
              "mentions divergence" true
              (Astring_contains.contains e "diverged")
        | Ok () -> Alcotest.fail "expected divergence");
    test "same_trace: identical seeded scenarios" (fun () ->
        let run () =
          match
            Scenario.chaos Regemu_core.Algorithm2.factory p
              ~writes_per_writer:2 ~readers:1 ~reads_per_reader:2 ~crashes:1
              ~seed:17 ()
          with
          | Ok r -> r.sim
          | Error e -> Alcotest.failf "chaos: %a" Scenario.error_pp e
        in
        Alcotest.(check bool) "deterministic" true (Replay.same_trace run run));
    test "same_trace: different seeds differ" (fun () ->
        let run seed () =
          match
            Scenario.chaos Regemu_core.Algorithm2.factory p
              ~writes_per_writer:2 ~readers:1 ~reads_per_reader:2 ~crashes:0
              ~seed ()
          with
          | Ok r -> r.sim
          | Error e -> Alcotest.failf "chaos: %a" Scenario.error_pp e
        in
        Alcotest.(check bool)
          "differ" false
          (Replay.same_trace (run 1) (run 2)));
  ]

let suites = [ ("replay", replay_tests) ]

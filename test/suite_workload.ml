(* Tests for the workload scenarios themselves. *)

open Regemu_bounds
open Regemu_history
open Regemu_workload

let test name f = Alcotest.test_case name `Quick f
let p = Params.make_exn ~k:2 ~f:1 ~n:4

let algo = Regemu_core.Algorithm2.factory

let ok = function
  | Ok r -> r
  | Error e -> Alcotest.failf "scenario failed: %a" Scenario.error_pp e

let scenario_tests =
  [
    test "write_sequential produces a write-sequential history" (fun () ->
        let r = ok (Scenario.write_sequential algo p ~rounds:3 ~seed:1 ()) in
        Alcotest.(check bool) "ws" true (History.write_sequential r.history);
        Alcotest.(check int)
          "writes" (3 * p.Params.k)
          (List.length (History.writes r.history)));
    test "write_sequential with reads interleaves one read per write"
      (fun () ->
        let r =
          ok
            (Scenario.write_sequential algo p ~read_after_each:true ~rounds:2
               ~seed:1 ())
        in
        Alcotest.(check int)
          "reads" (2 * p.Params.k)
          (List.length (History.reads r.history)));
    test "value_for is injective over slots and rounds" (fun () ->
        let vs =
          List.concat_map
            (fun s -> List.init 5 (fun r -> Scenario.value_for ~slot:s ~round:r))
            [ 0; 1; 2 ]
        in
        let distinct = List.sort_uniq compare vs in
        Alcotest.(check int) "distinct" (List.length vs) (List.length distinct));
    test "concurrent_reads keeps writes sequential" (fun () ->
        let r =
          ok
            (Scenario.concurrent_reads algo p ~rounds:2 ~readers:3 ~crashes:1
               ~seed:5 ())
        in
        Alcotest.(check bool) "ws" true (History.write_sequential r.history));
    test "concurrent_reads rejects crashes > f" (fun () ->
        Alcotest.(check bool)
          "raises" true
          (try
             ignore
               (Scenario.concurrent_reads algo p ~rounds:1 ~readers:1
                  ~crashes:2 ~seed:1 ());
             false
           with Invalid_argument _ -> true));
    test "chaos completes every planned operation" (fun () ->
        let r =
          ok
            (Scenario.chaos algo p ~writes_per_writer:3 ~readers:2
               ~reads_per_reader:3 ~crashes:1 ~seed:11 ())
        in
        Alcotest.(check int)
          "ops" ((3 * p.Params.k) + (2 * 3))
          (List.length r.history);
        Alcotest.(check int) "all complete"
          (List.length r.history)
          (List.length (History.complete r.history)));
    test "chaos is deterministic given the seed" (fun () ->
        let run () =
          let r =
            ok
              (Scenario.chaos algo p ~writes_per_writer:2 ~readers:1
                 ~reads_per_reader:2 ~crashes:1 ~seed:7 ())
          in
          List.map
            (fun (o : History.op) -> (o.index, o.invoked_at, o.returned_at))
            r.history
        in
        Alcotest.(check bool) "equal" true (run () = run ()));
    test "different seeds give different schedules" (fun () ->
        let run seed =
          let r =
            ok
              (Scenario.chaos algo p ~writes_per_writer:2 ~readers:1
                 ~reads_per_reader:2 ~crashes:0 ~seed ())
          in
          List.map (fun (o : History.op) -> o.invoked_at) r.history
        in
        Alcotest.(check bool) "differ" false (run 1 = run 2));
  ]

let suites = [ ("workload:scenarios", scenario_tests) ]

(* Tests for run statistics and the deterministic fair policy. *)

open Regemu_objects
open Regemu_sim

let test name f = Alcotest.test_case name `Quick f
let s0 = Id.Server.of_int 0

let stats_tests =
  [
    test "counts triggers/responds/invokes/returns" (fun () ->
        let sim = Sim.create ~n:2 () in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        let call =
          Sim.invoke sim ~client:c (Trace.H_write (Value.Int 1)) (fun () ->
              let d = ref false in
              ignore
                (Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 1))
                   ~on_response:(fun _ -> d := true));
              Sim.wait_until (fun () -> !d);
              Value.Unit)
        in
        ignore (Driver.finish_call_exn sim Policy.responds_first ~budget:10 call);
        let s = Stats.of_trace (Sim.trace sim) in
        Alcotest.(check int) "triggers" 1 s.triggers;
        Alcotest.(check int) "responds" 1 s.responds;
        Alcotest.(check int) "invocations" 1 s.invocations;
        Alcotest.(check int) "returns" 1 s.returns;
        Alcotest.(check int) "max outstanding" 1 s.max_outstanding;
        Alcotest.(check int) "pc" 1 s.point_contention);
    test "max_outstanding tracks simultaneous pending ops" (fun () ->
        let sim = Sim.create ~n:2 () in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        let l1 =
          Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 1))
            ~on_response:ignore
        in
        let l2 =
          Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 2))
            ~on_response:ignore
        in
        Sim.fire sim (Sim.Respond l1);
        Sim.fire sim (Sim.Respond l2);
        let s = Stats.of_trace (Sim.trace sim) in
        Alcotest.(check int) "max outstanding" 2 s.max_outstanding);
    test "per-object and per-client trigger counts" (fun () ->
        let sim = Sim.create ~n:2 () in
        let a = Sim.alloc sim ~server:s0 Base_object.Register in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        ignore (Sim.trigger sim ~client:c a Base_object.Read ~on_response:ignore);
        ignore (Sim.trigger sim ~client:c a Base_object.Read ~on_response:ignore);
        ignore (Sim.trigger sim ~client:c b Base_object.Read ~on_response:ignore);
        let s = Stats.of_trace (Sim.trace sim) in
        Alcotest.(check (option int))
          "a" (Some 2)
          (Id.Obj.Map.find_opt a s.triggers_per_object);
        Alcotest.(check (option int))
          "b" (Some 1)
          (Id.Obj.Map.find_opt b s.triggers_per_object);
        Alcotest.(check (option int))
          "client" (Some 3)
          (Id.Client.Map.find_opt c s.triggers_per_client));
    test "latencies in invocation order" (fun () ->
        let tr = Trace.create () in
        let c0 = Id.Client.of_int 0 and c1 = Id.Client.of_int 1 in
        Trace.record tr (Trace.Invoke (c0, Trace.H_read));
        Trace.record tr (Trace.Invoke (c1, Trace.H_read));
        Trace.record tr (Trace.Return (c1, Trace.H_read, Value.Unit));
        Trace.record tr (Trace.Return (c0, Trace.H_read, Value.Unit));
        Alcotest.(check (list int)) "latencies" [ 3; 1 ] (Stats.latencies tr));
    test "point contention counts overlapping high-level ops" (fun () ->
        let tr = Trace.create () in
        let c0 = Id.Client.of_int 0 and c1 = Id.Client.of_int 1 in
        Trace.record tr (Trace.Invoke (c0, Trace.H_read));
        Trace.record tr (Trace.Invoke (c1, Trace.H_read));
        Trace.record tr (Trace.Return (c0, Trace.H_read, Value.Unit));
        Trace.record tr (Trace.Return (c1, Trace.H_read, Value.Unit));
        let s = Stats.of_trace tr in
        Alcotest.(check int) "pc" 2 s.point_contention);
  ]

let round_robin_tests =
  [
    test "round robin is deterministic" (fun () ->
        let run () =
          let sim = Sim.create ~n:2 () in
          let b = Sim.alloc sim ~server:s0 Base_object.Register in
          let c = Sim.new_client sim in
          for i = 1 to 5 do
            ignore
              (Sim.trigger sim ~client:c b (Base_object.Write (Value.Int i))
                 ~on_response:ignore)
          done;
          let policy = Policy.round_robin () in
          ignore (Driver.quiesce sim policy ~budget:100);
          Sim.peek sim b
        in
        Alcotest.(check bool) "same" true (Value.equal (run ()) (run ())));
    test "round robin serves oldest-enabled first (FIFO responses)" (fun () ->
        let sim = Sim.create ~n:2 () in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        for i = 1 to 3 do
          ignore
            (Sim.trigger sim ~client:c b (Base_object.Write (Value.Int i))
               ~on_response:ignore)
        done;
        let policy = Policy.round_robin () in
        ignore (Driver.quiesce sim policy ~budget:100);
        (* responses fired in trigger order, so the last write wins *)
        Alcotest.(check bool)
          "last write wins" true
          (Value.equal (Sim.peek sim b) (Value.Int 3)));
    test "round robin interleaves steps and responses fairly" (fun () ->
        (* a client whose wait predicate is immediately true must not be
           starved by a stream of responses *)
        let sim = Sim.create ~n:2 () in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let c1 = Sim.new_client sim and c2 = Sim.new_client sim in
        let call =
          Sim.invoke sim ~client:c1 Trace.H_read (fun () ->
              Sim.wait_until (fun () -> true);
              Value.Int 42)
        in
        (* keep a response stream alive from another client *)
        let rec feed n _ =
          if n > 0 then
            ignore
              (Sim.trigger sim ~client:c2 b (Base_object.Write (Value.Int n))
                 ~on_response:(feed (n - 1)))
        in
        feed 20 Value.Unit;
        let policy = Policy.round_robin () in
        let o =
          Driver.run_until sim policy ~budget:10 (fun () ->
              Sim.call_returned call)
        in
        Alcotest.(check bool)
          "client stepped promptly" true
          (Driver.outcome_equal o Driver.Satisfied));
    test "all emulations stay WS-Safe under round robin" (fun () ->
        let p = Regemu_bounds.Params.make_exn ~k:2 ~f:1 ~n:4 in
        let sim = Sim.create ~n:4 () in
        let writers = List.init 2 (fun _ -> Sim.new_client sim) in
        let inst = Regemu_core.Algorithm2.factory.make sim p ~writers in
        let policy = Policy.round_robin () in
        List.iteri
          (fun i w ->
            ignore
              (Driver.finish_call_exn sim policy ~budget:50_000
                 (inst.write w (Value.Int i))))
          writers;
        let reader = Sim.new_client sim in
        let v =
          Driver.finish_call_exn sim policy ~budget:50_000 (inst.read reader)
        in
        Alcotest.(check bool) "latest" true (Value.equal v (Value.Int 1)));
  ]

let suites =
  [ ("sim:stats", stats_tests); ("sim:round-robin", round_robin_tests) ]

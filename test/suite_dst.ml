(* Tests for the deterministic-schedule testing stack: the virtual
   scheduler, the simulation harness, the fuzzer/shrinker, and the
   replay-file round trip. *)

open Regemu_dst

let test name f = Alcotest.test_case name `Quick f

(* --- the scheduler itself ----------------------------------------------- *)

let sched_tests =
  [
    test "one actor runs to completion and returns" (fun () ->
        let r, rep = Sched.run (Sched.default_config ~seed:1) (fun _ -> 42) in
        Alcotest.(check (option int)) "result" (Some 42) r;
        Alcotest.(check bool) "no deadlock" true (rep.Sched.deadlock = None);
        Alcotest.(check bool) "not stalled" false rep.Sched.stalled);
    test "spawned actors all run; suspend waits for them" (fun () ->
        let hits = ref 0 in
        let r, _ =
          Sched.run (Sched.default_config ~seed:7) (fun t ->
              for i = 1 to 5 do
                Sched.spawn t
                  ~name:(Fmt.str "worker-%d" i)
                  (fun () -> incr hits)
              done;
              let hook = Sched.hook t in
              hook.Regemu_live.Sched_hook.suspend (fun () -> !hits = 5);
              !hits)
        in
        Alcotest.(check (option int)) "all workers ran" (Some 5) r);
    test "sleep advances virtual time, not wall time" (fun () ->
        let wall0 = Unix.gettimeofday () in
        let r, rep =
          Sched.run (Sched.default_config ~seed:3) (fun t ->
              let hook = Sched.hook t in
              let t0 = Regemu_live.Clock.now_ns () in
              hook.Regemu_live.Sched_hook.sleep 30.0 (* 30 virtual seconds *);
              Int64.to_float (Int64.sub (Regemu_live.Clock.now_ns ()) t0)
              *. 1e-9)
        in
        let wall = Unix.gettimeofday () -. wall0 in
        (match r with
        | None -> Alcotest.fail "run returned no result"
        | Some slept ->
            Alcotest.(check bool)
              "virtual sleep elapsed" true (slept >= 30.0));
        Alcotest.(check bool) "wall time stayed small" true (wall < 5.0);
        Alcotest.(check bool)
          "virtual clock in the report" true
          (rep.Sched.vtime_ns > 30_000_000_000L));
    test "identical seeds give identical digests" (fun () ->
        let program t =
          let counter = ref 0 in
          for i = 1 to 4 do
            Sched.spawn t ~name:(Fmt.str "w%d" i) (fun () ->
                let hook = Sched.hook t in
                hook.Regemu_live.Sched_hook.sleep 0.001;
                incr counter)
          done;
          let hook = Sched.hook t in
          hook.Regemu_live.Sched_hook.suspend (fun () -> !counter = 4)
        in
        let _, r1 = Sched.run (Sched.default_config ~seed:11) program in
        let _, r2 = Sched.run (Sched.default_config ~seed:11) program in
        let _, r3 = Sched.run (Sched.default_config ~seed:12) program in
        Alcotest.(check string) "same seed, same digest" r1.Sched.digest
          r2.Sched.digest;
        Alcotest.(check bool)
          "different seed, different digest" true
          (r1.Sched.digest <> r3.Sched.digest));
    test "replaying the recorded choices reproduces the digest" (fun () ->
        let program t =
          let left = ref 3 in
          for i = 1 to 3 do
            Sched.spawn t ~name:(Fmt.str "a%d" i) (fun () -> decr left)
          done;
          let hook = Sched.hook t in
          hook.Regemu_live.Sched_hook.suspend (fun () -> !left = 0)
        in
        let _, r1 = Sched.run (Sched.default_config ~seed:5) program in
        let _, r2 =
          Sched.run ~replay:r1.Sched.choices
            (Sched.default_config ~seed:999 (* ignored where trace covers *))
            program
        in
        Alcotest.(check string) "digest reproduced" r1.Sched.digest
          r2.Sched.digest);
    test "a wedged run is reported as a deadlock, with actor names" (fun () ->
        let r, rep =
          Sched.run (Sched.default_config ~seed:2) (fun t ->
              Sched.spawn t ~name:"stuck" (fun () ->
                  let hook = Sched.hook t in
                  hook.Regemu_live.Sched_hook.suspend (fun () -> false));
              let hook = Sched.hook t in
              (* no timeout, never true: the whole run is wedged *)
              hook.Regemu_live.Sched_hook.suspend (fun () -> false);
              0)
        in
        Alcotest.(check (option int)) "no result" None r;
        match rep.Sched.deadlock with
        | None -> Alcotest.fail "deadlock not detected"
        | Some names ->
            Alcotest.(check bool)
              "stuck actor named" true
              (List.mem "stuck" names));
    test "max_steps turns a livelock into a stall report" (fun () ->
        let cfg = { (Sched.default_config ~seed:4) with Sched.max_steps = 50 } in
        let _, rep =
          Sched.run cfg (fun t ->
              let hook = Sched.hook t in
              (* a 1ms-timeout suspend loop never makes progress *)
              let rec spin n =
                if n = 0 then ()
                else begin
                  hook.Regemu_live.Sched_hook.suspend ~timeout_s:0.001
                    (fun () -> false);
                  spin (n - 1)
                end
              in
              spin 1_000_000)
        in
        Alcotest.(check bool) "stalled" true rep.Sched.stalled);
    test "suspend timeout fires on the virtual clock" (fun () ->
        let r, _ =
          Sched.run (Sched.default_config ~seed:6) (fun t ->
              let hook = Sched.hook t in
              let t0 = Regemu_live.Clock.now_ns () in
              hook.Regemu_live.Sched_hook.suspend ~timeout_s:2.0 (fun () ->
                  false);
              Int64.to_float (Int64.sub (Regemu_live.Clock.now_ns ()) t0)
              *. 1e-9)
        in
        match r with
        | None -> Alcotest.fail "no result"
        | Some waited ->
            Alcotest.(check bool) "timeout elapsed virtually" true
              (waited >= 2.0 && waited < 60.0));
    (* a little program with real branch points, for the replay
       edge-case tests below *)
    (let branchy t =
       let left = ref 4 in
       for i = 1 to 4 do
         Sched.spawn t ~name:(Fmt.str "b%d" i) (fun () -> decr left)
       done;
       let hook = Sched.hook t in
       hook.Regemu_live.Sched_hook.suspend (fun () -> !left = 0);
       !left
     in
     test "an empty replay trace behaves exactly like no trace" (fun () ->
         let _, bare = Sched.run (Sched.default_config ~seed:21) branchy in
         let r, rep =
           Sched.run ~replay:[||] (Sched.default_config ~seed:21) branchy
         in
         Alcotest.(check (option int)) "completes" (Some 0) r;
         Alcotest.(check string) "PRNG takes over from step one"
           bare.Sched.digest rep.Sched.digest;
         Alcotest.(check int) "nothing clamped" 0 rep.Sched.replay_clamped;
         Alcotest.(check int) "nothing left over" 0 rep.Sched.replay_unused));
    (let branchy t =
       let left = ref 4 in
       for i = 1 to 4 do
         Sched.spawn t ~name:(Fmt.str "b%d" i) (fun () -> decr left)
       done;
       let hook = Sched.hook t in
       hook.Regemu_live.Sched_hook.suspend (fun () -> !left = 0);
       !left
     in
     test "a too-long replay trace completes and reports the leftovers"
       (fun () ->
         let _, short = Sched.run (Sched.default_config ~seed:22) branchy in
         let padded =
           Array.append short.Sched.choices (Array.make 50 0)
         in
         let r, rep =
           Sched.run ~replay:padded (Sched.default_config ~seed:22) branchy
         in
         Alcotest.(check (option int)) "completes cleanly" (Some 0) r;
         Alcotest.(check bool) "no deadlock" true (rep.Sched.deadlock = None);
         Alcotest.(check bool) "not stalled" false rep.Sched.stalled;
         Alcotest.(check string) "prefix still steers the run"
           short.Sched.digest rep.Sched.digest;
         Alcotest.(check bool) "unused tail reported" true
           (rep.Sched.replay_unused > 0)));
    (let branchy t =
       let left = ref 4 in
       for i = 1 to 4 do
         Sched.spawn t ~name:(Fmt.str "b%d" i) (fun () -> decr left)
       done;
       let hook = Sched.hook t in
       hook.Regemu_live.Sched_hook.suspend (fun () -> !left = 0);
       !left
     in
     test "out-of-range replay values fold in range and are counted"
       (fun () ->
         let _, base = Sched.run (Sched.default_config ~seed:23) branchy in
         Alcotest.(check bool) "the program really branches" true
           (Array.length base.Sched.choices > 0);
         (* huge and negative values both fold back modulo the width *)
         let wild =
           Array.map
             (fun v -> if v mod 2 = 0 then v + 1_000_000 else v - 1_000_000)
             base.Sched.choices
         in
         let r, rep =
           Sched.run ~replay:wild (Sched.default_config ~seed:23) branchy
         in
         Alcotest.(check (option int)) "completes cleanly" (Some 0) r;
         Alcotest.(check bool) "no deadlock" true (rep.Sched.deadlock = None);
         Alcotest.(check bool) "clamps counted" true
           (rep.Sched.replay_clamped > 0);
         Alcotest.(check int) "every choice consumed" 0
           rep.Sched.replay_unused));
  ]

(* --- whole-run determinism ----------------------------------------------- *)

let determinism_tests =
  [
    test "same config twice: byte-identical run digests" (fun () ->
        let cfg = Dst.default_config ~seed:21 in
        let o1 = Dst.run cfg and o2 = Dst.run cfg in
        Alcotest.(check string) "digest" (Dst.run_digest o1)
          (Dst.run_digest o2);
        Alcotest.(check bool) "clean" true (Dst.passed o1));
    test "different seeds diverge" (fun () ->
        let o1 = Dst.run (Dst.default_config ~seed:22) in
        let o2 = Dst.run (Dst.default_config ~seed:23) in
        Alcotest.(check bool) "digests differ" true
          (Dst.run_digest o1 <> Dst.run_digest o2));
    test "replaying the recorded interleaving reproduces the run" (fun () ->
        let cfg = Dst.default_config ~seed:24 in
        let o1 = Dst.run cfg in
        let o2 = Dst.run ~choices:o1.Dst.report.Sched.choices cfg in
        Alcotest.(check string) "digest" (Dst.run_digest o1)
          (Dst.run_digest o2));
    test "all three protocols run clean under the virtual scheduler"
      (fun () ->
        List.iter
          (fun algo ->
            let cfg = { (Dst.default_config ~seed:25) with Dst.algo } in
            let o = Dst.run cfg in
            Alcotest.(check bool)
              (Fmt.str "%s clean" (Regemu_live.Live_bench.algo_name algo))
              true (Dst.passed o))
          [
            Regemu_live.Live_bench.Abd;
            Regemu_live.Live_bench.Abd_wb;
            Regemu_live.Live_bench.Alg2;
          ]);
  ]

(* --- gray faults + hedging under the virtual scheduler ------------------- *)

(* a run with a straggler, a stutter burst, and the hedge/deadline
   defenses armed: every hedge decision must be a deterministic
   function of (config, choices) *)
let gray_cfg ~seed =
  {
    (Dst.default_config ~seed) with
    Dst.hedge = true;
    nemesis =
      [
        { Regemu_chaos.Schedule.at_ms = 2;
          ev = Regemu_chaos.Schedule.Slow (1, 5000) };
        { Regemu_chaos.Schedule.at_ms = 8;
          ev = Regemu_chaos.Schedule.Stutter (2, 10) };
        { Regemu_chaos.Schedule.at_ms = 40;
          ev = Regemu_chaos.Schedule.Heal_slow 1 };
      ];
  }

let hedge_stats o =
  match o.Dst.stats with
  | None -> Alcotest.fail "gray run never reached its end"
  | Some s ->
      ( s.Dst.cluster_stats.Regemu_live.Cluster.hedges,
        s.Dst.cluster_stats.Regemu_live.Cluster.hedge_wins,
        s.Dst.cluster_stats.Regemu_live.Cluster.msgs_slowed,
        s.Dst.nemesis_counters )

let gray_determinism_tests =
  [
    test "hedge decisions replay byte-identically from the seed" (fun () ->
        let cfg = gray_cfg ~seed:31 in
        let o1 = Dst.run cfg and o2 = Dst.run cfg in
        Alcotest.(check bool) "clean" true (Dst.passed o1);
        Alcotest.(check string) "digest" (Dst.run_digest o1)
          (Dst.run_digest o2);
        let h1, w1, sl1, nem1 = hedge_stats o1 in
        let h2, w2, sl2, nem2 = hedge_stats o2 in
        Alcotest.(check int) "hedges" h1 h2;
        Alcotest.(check int) "hedge wins" w1 w2;
        Alcotest.(check int) "slowed envelopes" sl1 sl2;
        Alcotest.(check bool) "nemesis counters" true (nem1 = nem2);
        Alcotest.(check int) "the straggler was applied" 1
          nem1.Regemu_chaos.Nemesis.slows;
        Alcotest.(check int) "the stutter was applied" 1
          nem1.Regemu_chaos.Nemesis.stutters;
        Alcotest.(check int) "the heal was applied" 1
          nem1.Regemu_chaos.Nemesis.heal_slows;
        Alcotest.(check bool) "the slow link held envelopes" true (sl1 > 0));
    test "a recorded gray interleaving replays its hedge decisions"
      (fun () ->
        let cfg = gray_cfg ~seed:32 in
        let o1 = Dst.run cfg in
        let o2 = Dst.run ~choices:o1.Dst.report.Sched.choices cfg in
        Alcotest.(check string) "digest" (Dst.run_digest o1)
          (Dst.run_digest o2);
        Alcotest.(check bool) "hedge counters" true
          (hedge_stats o1 = hedge_stats o2));
    test "traced gray replays are byte-identical" (fun () ->
        let open Regemu_obs in
        let cfg = gray_cfg ~seed:33 in
        let o = Dst.run cfg in
        let traced () =
          let tr = Trace.create () in
          let o' =
            Dst.run ~choices:o.Dst.report.Sched.choices
              ~sink:(Regemu_live.Sink.make ~trace:tr ())
              cfg
          in
          Alcotest.(check string) "digest reproduced" (Dst.run_digest o)
            (Dst.run_digest o');
          Json.to_string (Export.chrome_json tr)
        in
        Alcotest.(check string) "identical trace exports" (traced ())
          (traced ()));
    test "hedging changes the run, gray faults change it again" (fun () ->
        (* hedge on/off and nemesis on/off must all be visible in the
           digest: the flag is doing something, and so is the fault *)
        let base = gray_cfg ~seed:34 in
        let o_gray = Dst.run base in
        let o_nohedge = Dst.run { base with Dst.hedge = false } in
        let o_quiet = Dst.run { base with Dst.nemesis = [] } in
        Alcotest.(check bool) "all clean" true
          (Dst.passed o_gray && Dst.passed o_nohedge && Dst.passed o_quiet);
        Alcotest.(check bool) "hedge flag visible" true
          (Dst.run_digest o_gray <> Dst.run_digest o_nohedge));
  ]

(* --- online checker vs full pass ----------------------------------------- *)

(* the satellite: on 200 fuzzed seeds, the incremental online verdict
   must agree with a from-scratch full-pass check of the final
   history.  [Dst.run] already cross-checks and reports disagreement
   as a violation; here we assert it directly on the stats. *)
let equivalence_tests =
  let agree profile seeds seed0 () =
    let base =
      { (Dst.default_config ~seed:seed0) with Dst.ops_per_client = 4 }
    in
    let report = Dst_fuzz.fuzz ~profile ~base ~seeds () in
    let checked = ref 0 in
    List.iter
      (fun (f : Dst_fuzz.failure) ->
        List.iter
          (fun v ->
            if String.length v >= 20 && String.sub v 0 20 = "checker-disagreement"
            then
              Alcotest.failf "seed %d: online/full divergence: %s"
                f.Dst_fuzz.seed v)
          f.Dst_fuzz.outcome.Dst.violations)
      report.Dst_fuzz.failures;
    (* and positively: every completed run's verdict classes match *)
    let recheck seed =
      let cfg = Dst_fuzz.config_for profile ~base ~seed in
      let o = Dst.run cfg in
      match o.Dst.stats with
      | None -> ()
      | Some s ->
          incr checked;
          Alcotest.(check string)
            (Fmt.str "seed %d verdict class" seed)
            (Dst.verdict_class s.Dst.full_ws)
            (Dst.verdict_class s.Dst.online.Regemu_live.Checker.ws)
    in
    for s = seed0 to seed0 + 9 do
      recheck s
    done;
    Alcotest.(check bool) "rechecked some runs" true (!checked > 0)
  in
  [
    test "online = full pass on 100 quiet seeds" (agree Dst_fuzz.Quiet 100 300);
    test "online = full pass on 60 chaos seeds" (agree Dst_fuzz.Chaos 60 500);
    test "online = full pass on 40 hunt seeds (violations included)"
      (agree Dst_fuzz.Hunt 40 700);
  ]

(* --- fuzzing and shrinking ----------------------------------------------- *)

let find_hunt_failure ~from =
  let base = Dst.default_config ~seed:from in
  let rec go seed limit =
    if limit = 0 then
      Alcotest.fail "no hunt failure found in 12 seeds (storms should bite)"
    else
      let cfg = Dst_fuzz.config_for Dst_fuzz.Hunt ~base ~seed in
      let o = Dst.run cfg in
      if Dst.passed o then go (seed + 1) (limit - 1) else (cfg, o)
  in
  go from 12

let shrink_tests =
  [
    test "ddmin finds the minimal failing subsequence" (fun () ->
        (* failure: contains both 3 and 7 *)
        let result =
          Dst_fuzz.ddmin
            ~test:(fun xs -> List.mem 3 xs && List.mem 7 xs)
            [ 1; 2; 3; 4; 5; 6; 7; 8 ]
        in
        Alcotest.(check (list int)) "exactly the two needed" [ 3; 7 ]
          (List.sort compare result));
    test "ddmin shrinks an input-independent failure to nothing" (fun () ->
        Alcotest.(check (list int))
          "empty" []
          (Dst_fuzz.ddmin ~test:(fun _ -> true) [ 1; 2; 3 ]));
    test "ddmin keeps a single culprit" (fun () ->
        Alcotest.(check (list int))
          "one element" [ 5 ]
          (Dst_fuzz.ddmin ~test:(fun xs -> List.mem 5 xs) [ 1; 5; 9; 13 ]));
    test "quiet fuzzing stays clean" (fun () ->
        let base = Dst.default_config ~seed:60 in
        let r = Dst_fuzz.fuzz ~profile:Dst_fuzz.Quiet ~base ~seeds:10 () in
        Alcotest.(check int) "all passed" 10 r.Dst_fuzz.passed);
    test "hunt failures shrink without changing the failure kind" (fun () ->
        let cfg, o = find_hunt_failure ~from:80 in
        let key = Dst_fuzz.failure_key o in
        let s = Dst_fuzz.shrink ~budget:80 cfg o in
        Alcotest.(check (list string))
          "same violation kinds" key
          (Dst_fuzz.failure_key s.Dst_fuzz.outcome);
        Alcotest.(check bool)
          "no larger than the original" true
          (List.length s.Dst_fuzz.cfg.Dst.nemesis
           <= List.length cfg.Dst.nemesis);
        Alcotest.(check bool)
          "minimized run still fails" false
          (Dst.passed s.Dst_fuzz.outcome));
    test "a shrunk counterexample replays to the recorded verdict" (fun () ->
        let cfg, o = find_hunt_failure ~from:120 in
        let s = Dst_fuzz.shrink ~budget:60 cfg o in
        let spec =
          Dst_fuzz.
            {
              r_cfg = s.cfg;
              r_choices = s.choices;
              r_expected_violations = s.outcome.Dst.violations;
              r_expected_digest = Dst.run_digest s.outcome;
            }
        in
        let r = Dst_fuzz.replay spec in
        Alcotest.(check bool) "reproduced" true (Dst_fuzz.replay_matched r));
  ]

(* --- the regemu-dst/1 replay file ---------------------------------------- *)

let replay_file_tests =
  [
    test "write / read round trip preserves the counterexample" (fun () ->
        let cfg, o = find_hunt_failure ~from:150 in
        let s = Dst_fuzz.shrink ~budget:40 cfg o in
        let path = Filename.temp_file "dst_replay" ".json" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            Dst_fuzz.write_replay path ~cfg:s.Dst_fuzz.cfg
              ~choices:s.Dst_fuzz.choices ~outcome:s.Dst_fuzz.outcome;
            match Dst_fuzz.read_replay path with
            | Error e -> Alcotest.failf "read back: %s" e
            | Ok spec ->
                Alcotest.(check int)
                  "seed" s.Dst_fuzz.cfg.Dst.seed spec.Dst_fuzz.r_cfg.Dst.seed;
                Alcotest.(check int)
                  "nemesis events"
                  (List.length s.Dst_fuzz.cfg.Dst.nemesis)
                  (List.length spec.Dst_fuzz.r_cfg.Dst.nemesis);
                Alcotest.(check (array int))
                  "choice trace" s.Dst_fuzz.choices spec.Dst_fuzz.r_choices;
                Alcotest.(check string)
                  "digest"
                  (Dst.run_digest s.Dst_fuzz.outcome)
                  spec.Dst_fuzz.r_expected_digest;
                let r = Dst_fuzz.replay spec in
                Alcotest.(check bool)
                  "file replays to its recorded verdict" true
                  (Dst_fuzz.replay_matched r)));
    test "parse_replay rejects wrong schemas and junk" (fun () ->
        let open Regemu_obs in
        let reject doc =
          match Dst_fuzz.parse_replay doc with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "accepted a malformed replay document"
        in
        reject (Json.Obj [ ("schema", Json.Str "regemu-bench/1") ]);
        reject (Json.Obj []);
        reject
          (Json.Obj
             [ ("schema", Json.Str "regemu-dst/1"); ("choices", Json.Null) ]));
    test "the committed known-good sample replays exactly" (fun () ->
        let path =
          if Sys.file_exists "dst_replay_sample.json" then
            "dst_replay_sample.json" (* dune runtest cwd *)
          else "test/dst_replay_sample.json" (* repo root *)
        in
        match Dst_fuzz.read_replay path with
        | Error e -> Alcotest.failf "%s: %s" path e
        | Ok spec ->
            let r = Dst_fuzz.replay spec in
            Alcotest.(check bool)
              "digest and violations reproduced" true
              (Dst_fuzz.replay_matched r);
            Alcotest.(check bool)
              "it is a real counterexample" false
              (Dst.passed r.Dst_fuzz.outcome));
    test "config survives a json round trip" (fun () ->
        let cfg =
          {
            (Dst.default_config ~seed:77) with
            Dst.algo = Regemu_live.Live_bench.Alg2;
            writers = 1;
            readers = 3;
            ops_per_client = 5;
            recovery = Regemu_live.Recovery.Amnesia;
            drop_prob = 0.1;
          }
        in
        match Dst.config_of_json (Dst.config_json cfg) with
        | Error e -> Alcotest.failf "round trip: %s" e
        | Ok cfg' ->
            Alcotest.(check bool)
              "equal (nemesis travels separately)" true
              (cfg' = { cfg with Dst.nemesis = [] }))
  ]

let suites =
  [
    ("dst.sched", sched_tests);
    ("dst.determinism", determinism_tests);
    ("dst.gray", gray_determinism_tests);
    ("dst.equivalence", equivalence_tests);
    ("dst.shrink", shrink_tests);
    ("dst.replayfile", replay_file_tests);
  ]

(* Tests for the pure bound formulas (Table 1, Theorems 1, 3, 6, 7). *)

open Regemu_bounds

let params k f n = Params.make_exn ~k ~f ~n

let check_int = Alcotest.(check int)
let test name f = Alcotest.test_case name `Quick f

(* --- Params ------------------------------------------------------- *)

let params_tests =
  [
    test "valid triple accepted" (fun () ->
        let p = params 3 1 3 in
        check_int "k" 3 p.k;
        check_int "f" 1 p.f;
        check_int "n" 3 p.n);
    test "k = 0 rejected" (fun () ->
        Alcotest.(check bool)
          "error" true
          (Result.is_error (Params.make ~k:0 ~f:1 ~n:3)));
    test "f = 0 rejected" (fun () ->
        Alcotest.(check bool)
          "error" true
          (Result.is_error (Params.make ~k:1 ~f:0 ~n:3)));
    test "n = 2f rejected (Theorem 5)" (fun () ->
        Alcotest.(check bool)
          "error" true
          (Result.is_error (Params.make ~k:1 ~f:2 ~n:4)));
    test "n = 2f+1 accepted" (fun () ->
        Alcotest.(check bool)
          "ok" true
          (Result.is_ok (Params.make ~k:1 ~f:2 ~n:5)));
    test "grid drops invalid combinations" (fun () ->
        let g = Params.grid ~ks:[ 1; 2 ] ~fs:[ 1; 2 ] ~ns:[ 3; 5 ] in
        (* (f=1,n=3), (f=1,n=5), (f=2,n=5) valid for each k: 6 total *)
        check_int "size" 6 (List.length g));
  ]

(* --- Formulas ----------------------------------------------------- *)

let formulas_tests =
  [
    test "ceil_div exact" (fun () -> check_int "6/3" 2 (Formulas.ceil_div 6 3));
    test "ceil_div rounds up" (fun () ->
        check_int "7/3" 3 (Formulas.ceil_div 7 3));
    test "ceil_div zero numerator" (fun () ->
        check_int "0/3" 0 (Formulas.ceil_div 0 3));
    test "z at n=2f+1 is 1" (fun () ->
        check_int "z" 1 (Formulas.z (params 4 2 5)));
    test "z for figure 1 parameters (n=6,k=5,f=2)" (fun () ->
        check_int "z" 1 (Formulas.z (params 5 2 6)));
    test "y = zf+f+1" (fun () ->
        let p = params 5 2 6 in
        check_int "y" 5 (Formulas.y p));
    test "figure 1 layout: five sets of five registers" (fun () ->
        let p = params 5 2 6 in
        Alcotest.(check (list int))
          "sizes" [ 5; 5; 5; 5; 5 ] (Formulas.set_sizes p));
    test "overflow set size" (fun () ->
        (* n=10, f=2 -> z=3; k=5 -> one full set of 3f+f+1=9 and an
           overflow set of (5-3)f+f+1 = 7 *)
        let p = params 5 2 10 in
        Alcotest.(check (list int)) "sizes" [ 9; 7 ] (Formulas.set_sizes p));
    test "set sizes sum to upper bound" (fun () ->
        List.iter
          (fun p ->
            check_int
              (Fmt.str "sum at %a" Params.pp p)
              (Formulas.register_upper_bound p)
              (List.fold_left ( + ) 0 (Formulas.set_sizes p)))
          (Params.grid ~ks:[ 1; 2; 3; 5; 8 ] ~fs:[ 1; 2; 3 ]
             ~ns:[ 3; 5; 7; 9; 12; 20 ]));
    test "lower bound at n=2f+1 is kf+k(f+1)" (fun () ->
        let p = params 4 2 5 in
        check_int "lb" ((4 * 2) + (4 * 3)) (Formulas.register_lower_bound p));
    test "upper bound at n=2f+1 is kf+k(f+1)" (fun () ->
        let p = params 4 2 5 in
        check_int "ub" ((4 * 2) + (4 * 3)) (Formulas.register_upper_bound p));
    test "bounds coincide at saturation (n >= kf+f+1)" (fun () ->
        let k = 4 and f = 2 in
        let n = Formulas.saturation_n ~k ~f in
        let p = params k f n in
        check_int "lb" ((k * f) + f + 1) (Formulas.register_lower_bound p);
        check_int "ub" ((k * f) + f + 1) (Formulas.register_upper_bound p));
    test "max-register and CAS bounds are 2f+1" (fun () ->
        let p = params 7 3 9 in
        check_int "maxreg" 7 (Formulas.maxreg_bound p);
        check_int "cas" 7 (Formulas.cas_bound p));
    test "Theorem 7 example" (fun () ->
        (* k=4, f=2, capacity 3: ceil(8/3)+3 = 6 *)
        check_int "min servers" 6 (Formulas.min_servers ~k:4 ~f:2 ~capacity:3));
    test "Theorem 6 requires n=2f+1" (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument
             "per_server_lower_bound_at_minimum_n: requires n = 2f+1")
          (fun () ->
            ignore (Formulas.per_server_lower_bound_at_minimum_n (params 3 1 4))));
    test "Theorem 6 value is k" (fun () ->
        check_int "per server" 6
          (Formulas.per_server_lower_bound_at_minimum_n (params 6 2 5)));
  ]

(* --- Properties ---------------------------------------------------- *)

let gen_params =
  QCheck.Gen.(
    let* f = int_range 1 4 in
    let* k = int_range 1 12 in
    let* n = int_range ((2 * f) + 1) 25 in
    return (Params.make_exn ~k ~f ~n))

let arb_params =
  QCheck.make gen_params ~print:(fun p -> Fmt.str "%a" Params.pp p)

let prop name p = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 arb_params p)

let property_tests =
  [
    prop "upper bound >= lower bound" (fun p ->
        Formulas.register_upper_bound p >= Formulas.register_lower_bound p);
    prop "lower bound >= kf + f + 1" (fun p ->
        Formulas.register_lower_bound p >= (p.k * p.f) + p.f + 1);
    prop "bounds coincide at n=2f+1 and at saturation" (fun p ->
        let at_min = Params.make_exn ~k:p.k ~f:p.f ~n:((2 * p.f) + 1) in
        let at_sat =
          Params.make_exn ~k:p.k ~f:p.f ~n:(Formulas.saturation_n ~k:p.k ~f:p.f)
        in
        Formulas.bounds_coincide at_min && Formulas.bounds_coincide at_sat);
    prop "lower bound non-increasing in n" (fun p ->
        let p' = Params.make_exn ~k:p.k ~f:p.f ~n:(p.n + 1) in
        Formulas.register_lower_bound p' <= Formulas.register_lower_bound p);
    prop "upper bound non-increasing in n" (fun p ->
        let p' = Params.make_exn ~k:p.k ~f:p.f ~n:(p.n + 1) in
        Formulas.register_upper_bound p' <= Formulas.register_upper_bound p);
    prop "bounds increase by at least f per writer" (fun p ->
        let p' = Params.make_exn ~k:(p.k + 1) ~f:p.f ~n:p.n in
        Formulas.register_lower_bound p' - Formulas.register_lower_bound p
        >= p.f
        && Formulas.register_upper_bound p' - Formulas.register_upper_bound p
           >= p.f);
    prop "set sizes: all within [2f+1, n], distinct-server feasible" (fun p ->
        List.for_all
          (fun s -> s >= (2 * p.f) + 1 && s <= p.n)
          (Formulas.set_sizes p));
    prop "number of sets matches ceil(k/z)" (fun p ->
        List.length (Formulas.set_sizes p) = Formulas.num_sets p);
    prop "Theorem 7 consistent with Theorem 1 at unit capacity" (fun p ->
        (* with capacity m = 1, at least kf + f + 1 servers: the count of
           registers outside F plus |F| itself *)
        Formulas.min_servers ~k:p.k ~f:p.f ~capacity:1
        = (p.k * p.f) + p.f + 1);
  ]


let inverse_tests =
  [
    test "max_writers inverts the upper bound" (fun () ->
        List.iter
          (fun (f, n) ->
            List.iter
              (fun k ->
                let p = Params.make_exn ~k ~f ~n in
                let budget = Formulas.register_upper_bound p in
                match Formulas.max_writers ~f ~n ~budget with
                | None -> Alcotest.failf "no k fits budget %d" budget
                | Some k' ->
                    if k' < k then
                      Alcotest.failf "max_writers says %d but %d fits" k' k;
                    (* one more writer must not fit within the budget of k *)
                    let p'' = Params.make_exn ~k:(k' + 1) ~f ~n in
                    if Formulas.register_upper_bound p'' <= budget then
                      Alcotest.fail "max_writers not maximal")
              [ 1; 2; 5; 9 ])
          [ (1, 3); (2, 6); (2, 13) ]);
    test "max_writers is None below the minimum budget" (fun () ->
        Alcotest.(check (option int))
          "tiny budget" None
          (Formulas.max_writers ~f:2 ~n:5 ~budget:3));
  ]

let suites =
  [
    ("bounds:params", params_tests);
    ("bounds:formulas", formulas_tests);
    ("bounds:properties", property_tests);
    ("bounds:inverse", inverse_tests);
  ]

(* Tests for the Aspnes–Attiya–Censor bounded max-register. *)

open Regemu_objects
open Regemu_sim
open Regemu_baselines

let test name f = Alcotest.test_case name `Quick f
let s0 = Id.Server.of_int 0

let mk capacity =
  let sim = Sim.create ~n:1 () in
  (sim, Tree_maxreg.create sim ~server:s0 ~capacity)

let run_op sim call =
  Driver.finish_call_exn sim Policy.responds_first ~budget:10_000 call

let unit_tests =
  [
    test "uses capacity - 1 registers" (fun () ->
        List.iter
          (fun cap ->
            let _, m = mk cap in
            Alcotest.(check int)
              (Fmt.str "cap %d" cap)
              (cap - 1)
              (List.length (Tree_maxreg.objects m)))
          [ 1; 2; 3; 4; 7; 8; 16; 33 ]);
    test "sequential write-max/read-max semantics" (fun () ->
        let sim, m = mk 16 in
        let c = Sim.new_client sim in
        let w v = ignore (run_op sim (Tree_maxreg.write_max m c v)) in
        let r () =
          match run_op sim (Tree_maxreg.read_max m c) with
          | Value.Int i -> i
          | v -> Alcotest.failf "unexpected %a" Value.pp v
        in
        Alcotest.(check int) "initial" 0 (r ());
        w 5;
        Alcotest.(check int) "5" 5 (r ());
        w 3;
        Alcotest.(check int) "still 5" 5 (r ());
        w 15;
        Alcotest.(check int) "15" 15 (r ());
        w 0;
        Alcotest.(check int) "still 15" 15 (r ()));
    test "capacity 1 stores nothing and reads 0" (fun () ->
        let sim, m = mk 1 in
        let c = Sim.new_client sim in
        ignore (run_op sim (Tree_maxreg.write_max m c 0));
        Alcotest.(check bool)
          "0" true
          (Value.equal (run_op sim (Tree_maxreg.read_max m c)) (Value.Int 0)));
    test "out-of-range writes rejected" (fun () ->
        let sim, m = mk 8 in
        let c = Sim.new_client sim in
        List.iter
          (fun v ->
            Alcotest.(check bool)
              (Fmt.str "%d" v) true
              (try
                 ignore (Tree_maxreg.write_max m c v);
                 false
               with Invalid_argument _ -> true))
          [ -1; 8; 100 ]);
    test "step complexity is logarithmic" (fun () ->
        let steps_for cap v =
          let sim, m = mk cap in
          let c = Sim.new_client sim in
          ignore (run_op sim (Tree_maxreg.write_max m c v));
          Tree_maxreg.last_op_steps m
        in
        (* writing the maximum touches one switch per level *)
        Alcotest.(check bool)
          "cap 1024 wmax <= 11" true
          (steps_for 1024 1023 <= 11);
        Alcotest.(check bool)
          "cap 16 wmax <= 5" true
          (steps_for 16 15 <= 5);
        (* far below linear in capacity *)
        Alcotest.(check bool)
          "sublinear" true
          (steps_for 1024 1023 < 1024 / 4));
    test "read steps are logarithmic too" (fun () ->
        let sim, m = mk 256 in
        let c = Sim.new_client sim in
        ignore (run_op sim (Tree_maxreg.write_max m c 200));
        ignore (run_op sim (Tree_maxreg.read_max m c));
        Alcotest.(check bool)
          "<= 9" true
          (Tree_maxreg.last_op_steps m <= 9));
  ]

(* random concurrent runs are linearizable (AAC's theorem) *)
let atomicity_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"tree max-register is atomic (AAC)" ~count:120
         (QCheck.make QCheck.Gen.(int_range 0 1_000_000) ~print:string_of_int)
         (fun seed ->
           let sim, m = mk 8 in
           let clients = List.init 3 (fun _ -> Sim.new_client sim) in
           let rng = Rng.create seed in
           let policy = Policy.uniform (Rng.split rng) in
           let calls = ref [] in
           let planned = ref 6 in
           let rec loop guard =
             if guard = 0 then Alcotest.fail "did not finish";
             let idle =
               List.filter (fun c -> not (Sim.client_busy sim c)) clients
             in
             if !planned > 0 && idle <> [] && Rng.int rng ~bound:3 = 0 then begin
               decr planned;
               let c = Rng.pick rng idle in
               let call =
                 if Rng.bool rng then
                   Tree_maxreg.write_max m c (Rng.int rng ~bound:8)
                 else Tree_maxreg.read_max m c
               in
               calls := call :: !calls;
               loop (guard - 1)
             end
             else if Driver.step sim policy then loop (guard - 1)
             else if !planned > 0 then loop (guard - 1)
             else ()
           in
           loop 100_000;
           (match
              Driver.run_until sim policy ~budget:100_000 (fun () ->
                  List.for_all Sim.call_returned !calls)
            with
           | Driver.Satisfied -> ()
           | o -> Alcotest.failf "drain: %a" Driver.outcome_pp o);
           let h = Regemu_history.History.of_trace (Sim.trace sim) in
           (* same max-register spec but over the integer domain: the
              tree's initial value is Int 0, not the generic v0 *)
           let int_max_register =
             {
               Regemu_history.Linearize.max_register with
               name = "int-max-register";
               init = Value.Int 0;
             }
           in
           Regemu_history.Linearize.linearizable int_max_register h));
  ]

let suites =
  [
    ("tree-maxreg:unit", unit_tests);
    ("tree-maxreg:atomicity", atomicity_tests);
  ]

(* Tests for the keyspace stack: placement, the trimmable op log, the
   open-loop generator, the memory-bounded checker (GC soundness via
   DST), and the bench JSON schema gate. *)

open Regemu_keyspace

let test name f = Alcotest.test_case name `Quick f
let check_int = Alcotest.(check int)

(* --- Placement ---------------------------------------------------- *)

let arb_nf =
  QCheck.make
    ~print:(fun (n, f, key) -> Fmt.str "n=%d f=%d key=%d" n f key)
    QCheck.Gen.(
      let* f = 1 -- 4 in
      let* n = (2 * f) + 1 -- 24 in
      let* key = 0 -- 1_000_000 in
      return (n, f, key))

let prop name p =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 arb_nf p)

let placement_tests =
  [
    prop "replica set has 2f+1 distinct in-range servers" (fun (n, f, key) ->
        let p = Placement.create ~n ~f in
        let reps = Placement.replicas p key in
        List.length reps = (2 * f) + 1
        && List.length (List.sort_uniq compare reps) = (2 * f) + 1
        && List.for_all (fun s -> s >= 0 && s < n) reps);
    prop "any two quorums of one key intersect" (fun (n, f, key) ->
        (* every quorum is f+1 of the same 2f+1 replicas, so any two
           must share a server — check the worst case: a prefix quorum
           against a suffix quorum *)
        let p = Placement.create ~n ~f in
        let reps = Placement.replicas p key in
        let q = Placement.quorum p in
        let prefix = List.filteri (fun i _ -> i < q) reps in
        let suffix = List.filteri (fun i _ -> i >= List.length reps - q) reps in
        List.exists (fun s -> List.mem s suffix) prefix);
    prop "placement is a pure function of (n, f, key)" (fun (n, f, key) ->
        let a = Placement.create ~n ~f in
        let b = Placement.create ~n ~f in
        Placement.replicas a key = Placement.replicas b key);
    test "hash matches golden values (no process/seed dependence)"
      (fun () ->
        (* FNV-1a over decimal digits, masked to 62 bits: these values
           must never change, or every recorded placement shifts *)
        List.iter
          (fun (key, expect) -> check_int (Fmt.str "hash %d" key) expect
              (Placement.hash key))
          [
            (0, 3414763486654340271);
            (1, 3414762387142712060);
            (7, 3414760188119455638);
            (42, 571532774284038691);
            (12345, 2699319223499327992);
            (99999, 3420389540986028976);
          ]);
    test "hash is non-negative over a dense range" (fun () ->
        for key = 0 to 20_000 do
          if Placement.hash key < 0 then
            Alcotest.failf "hash %d is negative" key
        done);
    test "n < 2f+1 rejected" (fun () ->
        Alcotest.check_raises "too few servers"
          (Invalid_argument
             "Placement.create: need n >= 2f+1 = 5 servers, have 4")
          (fun () -> ignore (Placement.create ~n:4 ~f:2)));
    test "load spreads across servers" (fun () ->
        (* with 10^4 keys over 8 servers, r=3: every server holds some
           keys, and no server holds more than twice its fair share *)
        let p = Placement.create ~n:8 ~f:1 in
        let keys = 10_000 in
        let fair = keys * 3 / 8 in
        for s = 0 to 7 do
          let l = Placement.server_load p ~keys s in
          if l = 0 || l > 2 * fair then
            Alcotest.failf "server %d holds %d keys (fair share %d)" s l fair
        done);
  ]

(* --- Klog --------------------------------------------------------- *)

open Regemu_objects

let klog_tests =
  [
    test "invoke/return round trip with keys" (fun () ->
        let t = Klog.create () in
        let w = Klog.new_writer t ~client:(Id.Client.of_int 0) in
        let tk = Klog.invoke w ~key:5 Regemu_sim.Trace.(H_write (Value.Int 1)) in
        Klog.return tk (Value.Int 9);
        let seen = ref [] in
        let view = Klog.poll w ~from:0 (fun c -> seen := c :: !seen) in
        check_int "len" 1 view.Klog.len;
        match !seen with
        | [ c ] ->
            check_int "key" 5 c.Klog.k_key;
            Alcotest.(check bool)
              "result" true
              (c.Klog.k_result = Some (Value.Int 9));
            Alcotest.(check bool) "not aborted" false c.Klog.k_aborted
        | _ -> Alcotest.fail "expected one cell");
    test "trim releases whole chunks and poll skips them" (fun () ->
        let t = Klog.create () in
        let w = Klog.new_writer t ~client:(Id.Client.of_int 0) in
        (* 3 chunks' worth of completed ops *)
        let per_chunk = 256 in
        for i = 0 to (3 * per_chunk) - 1 do
          let tk = Klog.invoke w ~key:(i mod 7) Regemu_sim.Trace.(H_write (Value.Int 1)) in
          Klog.return tk (Value.Int i)
        done;
        let before = Klog.resident_cells t in
        Klog.trim w ~upto:(2 * per_chunk);
        let after = Klog.resident_cells t in
        Alcotest.(check bool)
          "trim released memory" true
          (after < before && after > 0);
        let first = ref None in
        let view =
          Klog.poll w ~from:0 (fun c ->
              if !first = None then first := Some c.Klog.k_invoked_at)
        in
        check_int "absolute length survives the trim" (3 * per_chunk)
          view.Klog.len;
        (* cells below the trim point are gone: the first visited cell
           is the first of chunk 2, whose ticks start at 2*per_chunk *)
        match !first with
        | Some tick ->
            Alcotest.(check bool)
              "trimmed prefix not revisited" true (tick >= 2 * per_chunk)
        | None -> Alcotest.fail "poll visited nothing");
    test "aborted ops complete the cell" (fun () ->
        let t = Klog.create () in
        let w = Klog.new_writer t ~client:(Id.Client.of_int 0) in
        let tk = Klog.invoke w ~key:1 Regemu_sim.Trace.(H_write (Value.Int 1)) in
        Klog.abort tk;
        check_int "completed" 1 (Klog.completed t);
        check_int "aborted" 1 (Klog.aborted t);
        let aborted = ref false in
        ignore (Klog.poll w ~from:0 (fun c -> aborted := c.Klog.k_aborted));
        Alcotest.(check bool) "cell marked aborted" true !aborted);
  ]

(* --- Openload determinism ----------------------------------------- *)

let openload_tests =
  [
    test "op stream is a pure function of (seed, i)" (fun () ->
        let cfg = { Openload.default_config with seed = 99; keys = 64 } in
        for i = 0 to 499 do
          check_int
            (Fmt.str "key of op %d" i)
            (Openload.key_of_op cfg i)
            (Openload.key_of_op cfg i);
          Alcotest.(check bool)
            (Fmt.str "kind of op %d" i)
            (Openload.is_write_op cfg i)
            (Openload.is_write_op cfg i)
        done);
    test "different seeds give different streams" (fun () ->
        let cfg s = { Openload.default_config with seed = s; keys = 1024 } in
        let keys s = List.init 200 (Openload.key_of_op (cfg s)) in
        Alcotest.(check bool) "streams differ" true (keys 1 <> keys 2));
    test "zipf skew concentrates on few keys, uniform does not" (fun ()
      ->
        let draw zipf =
          let cfg =
            { Openload.default_config with seed = 5; keys = 1000; zipf }
          in
          let hits = Hashtbl.create 64 in
          for i = 0 to 4_999 do
            let k = Openload.key_of_op cfg i in
            Hashtbl.replace hits k (1 + Option.value ~default:0
                                          (Hashtbl.find_opt hits k))
          done;
          hits
        in
        let top hits =
          Hashtbl.fold (fun _ c best -> max c best) hits 0
        in
        let skewed = draw 1.2 and uniform = draw 0.0 in
        Alcotest.(check bool)
          "hot key dominates under skew" true
          (top skewed > 10 * top uniform);
        Alcotest.(check bool)
          "uniform touches most of the keyspace" true
          (Hashtbl.length uniform > 900));
  ]

(* --- end-to-end: live smoke + checker GC soundness under DST ------- *)

let dst_gc_test profile =
  test
    (Fmt.str "GC'd checker still catches a post-settle wipe (%s)"
       (Regemu_dst.Dst_keyspace.profile_name profile))
    (fun () ->
      let cfg = Regemu_dst.Dst_keyspace.default_config ~profile ~seed:2026 in
      let o = Regemu_dst.Dst_keyspace.run cfg in
      (match o.Regemu_dst.Dst_keyspace.problems with
      | [] -> ()
      | ps -> Alcotest.failf "harness problems: %s" (String.concat "; " ps));
      Alcotest.(check bool)
        "a prefix was settled before the wipe" true
        (o.Regemu_dst.Dst_keyspace.settled_at_wipe > 0);
      Alcotest.(check bool)
        "the checker caught the wipe" true o.Regemu_dst.Dst_keyspace.caught;
      Alcotest.(check bool)
        "gc_soundness_holds" true
        (Regemu_dst.Dst_keyspace.gc_soundness_holds o))

let e2e_tests =
  [
    test "clean DST run checks clean" (fun () ->
        let cfg =
          {
            (Regemu_dst.Dst_keyspace.default_config ~profile:Regemu_dst.Dst_keyspace.Quiet ~seed:7)
            with
            wipe_frac = 0.0;
          }
        in
        let o = Regemu_dst.Dst_keyspace.run cfg in
        (match o.Regemu_dst.Dst_keyspace.problems with
        | [] -> ()
        | ps ->
            Alcotest.failf "harness problems: %s" (String.concat "; " ps));
        match o.Regemu_dst.Dst_keyspace.result with
        | None -> Alcotest.fail "no result"
        | Some r ->
            check_int "no violations" 0 r.Kchecker.violations;
            check_int "no deep mismatches" 0 r.Kchecker.deep_mismatches;
            Alcotest.(check bool) "checks ran" true (r.Kchecker.checks > 0));
    dst_gc_test Regemu_dst.Dst_keyspace.Quiet;
    dst_gc_test Regemu_dst.Dst_keyspace.Chaos;
    test "live smoke run stays within its memory budget" (fun () ->
        let spec =
          { Kbench.smoke_spec with zipfs = [ 0.9 ]; total_ops = 300 }
        in
        let o = Kbench.run spec in
        match o.Kbench.skews with
        | [ s ] ->
            check_int "all completed" 300
              (s.Kbench.completed + s.Kbench.failed);
            check_int "no violations" 0 s.Kbench.violations;
            check_int "no deep mismatches" 0 s.Kbench.deep_mismatches;
            Alcotest.(check bool) "within budget" true s.Kbench.within_budget
        | _ -> Alcotest.fail "expected one skew");
  ]

(* --- bench JSON schema gate --------------------------------------- *)

let valid_doc () =
  let spec = { Kbench.smoke_spec with zipfs = [ 0.5 ]; total_ops = 40 } in
  Kbench.to_json (Kbench.run spec)

let reject name doc =
  test name (fun () ->
      match Kbench.validate_keyspace_json doc with
      | Ok () -> Alcotest.fail "validation accepted a malformed document"
      | Error _ -> ())

module Json = Regemu_obs.Json

let rec strip key = function
  | Json.Obj fields ->
      Json.Obj
        (List.filter_map
           (fun (k, v) -> if k = key then None else Some (k, strip key v))
           fields)
  | Json.List l -> Json.List (List.map (strip key) l)
  | j -> j

let schema_tests =
  let doc = valid_doc () in
  [
    test "real outcome validates" (fun () ->
        match Kbench.validate_keyspace_json doc with
        | Ok () -> ()
        | Error e -> Alcotest.failf "rejected a real outcome: %s" e);
    reject "wrong schema tag rejected"
      (strip "schema" doc |> function
       | Json.Obj f -> Json.Obj (("schema", Json.Str "regemu-live/1") :: f)
       | j -> j);
    reject "missing schema rejected" (strip "schema" doc);
    reject "missing spec rejected" (strip "spec" doc);
    reject "empty skews rejected"
      (strip "skews" doc |> function
       | Json.Obj f -> Json.Obj (("skews", Json.List []) :: f)
       | j -> j);
    reject "skew without checker fields rejected" (strip "violations" doc);
    reject "skew without budget verdict rejected" (strip "within_budget" doc);
  ]

let suites =
  [
    ("keyspace.placement", placement_tests);
    ("keyspace.klog", klog_tests);
    ("keyspace.openload", openload_tests);
    ("keyspace.e2e", e2e_tests);
    ("keyspace.schema", schema_tests);
  ]

(* End-to-end tests shared by all emulations: safety (WS-Safe /
   WS-Regular), liveness (wait-freedom under <= f crashes), and
   resource consumption (Table 1). *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_core
open Regemu_history
open Regemu_baselines
open Regemu_workload

let test name f = Alcotest.test_case name `Quick f
let params k f n = Params.make_exn ~k ~f ~n

(* every factory, with a parameter filter for when it applies *)
let factories : (Emulation.factory * (Params.t -> bool)) list =
  [
    (Regemu_core.Algorithm2.factory, fun _ -> true);
    (Abd_max.factory, fun _ -> true);
    (Abd_cas.factory, fun _ -> true);
    (Abd_max_atomic.factory, fun _ -> true);
    (Layered.factory, fun p -> p.Params.n = (2 * p.Params.f) + 1);
  ]

let ok_or_fail label = function
  | Ok r -> r
  | Error e -> Alcotest.failf "%s: %a" label Scenario.error_pp e

let check_holds label verdict =
  match verdict with
  | Ws_check.Holds | Ws_check.Vacuous -> ()
  | Ws_check.Violated v ->
      Alcotest.failf "%s: %a" label Ws_check.violation_pp v

let param_grid =
  [ params 1 1 3; params 3 1 3; params 2 2 5; params 5 2 6; params 4 1 8 ]

let for_all_factories name check =
  List.concat_map
    (fun (factory, applies) ->
      List.filter_map
        (fun p ->
          if applies p then
            Some
              (test
                 (Fmt.str "%s: %s at %a" factory.Emulation.name name Params.pp p)
                 (fun () -> check factory p))
          else None)
        param_grid)
    factories

(* --- WS-Safety on sequential runs ------------------------------------ *)

let ws_safe_tests =
  for_all_factories "WS-Safe on sequential writes+reads" (fun factory p ->
      let r =
        ok_or_fail "scenario"
          (Scenario.write_sequential factory p ~read_after_each:true ~rounds:2
             ~seed:11 ())
      in
      check_holds "ws-safe" (Ws_check.check_ws_safe r.history);
      (* sanity: the run really is write-sequential and has reads *)
      Alcotest.(check bool)
        "write-sequential" true
        (History.write_sequential r.history);
      Alcotest.(check bool)
        "has reads" true
        (History.reads r.history <> []))

(* --- WS-Regularity with concurrent reads and crashes ------------------ *)

let ws_regular_tests =
  for_all_factories "WS-Regular with concurrent reads and f crashes"
    (fun factory p ->
      let r =
        ok_or_fail "scenario"
          (Scenario.concurrent_reads factory p ~rounds:2 ~readers:2
             ~crashes:p.Params.f ~seed:23 ())
      in
      check_holds "ws-regular" (Ws_check.check_ws_regular r.history))

(* --- Wait-freedom under chaos ----------------------------------------- *)

let liveness_tests =
  for_all_factories "wait-free under concurrent chaos and f crashes"
    (fun factory p ->
      let r =
        ok_or_fail "chaos"
          (Scenario.chaos factory p ~writes_per_writer:2 ~readers:2
             ~reads_per_reader:2 ~crashes:p.Params.f ~seed:37 ())
      in
      (* every op completed: of_trace found no pending high-level ops *)
      let pending =
        List.filter (fun o -> not (History.is_complete o)) r.history
      in
      Alcotest.(check int) "no pending ops" 0 (List.length pending))

(* --- Resource consumption (Table 1) ----------------------------------- *)

let usage_tests =
  for_all_factories "resource consumption matches Table 1" (fun factory p ->
      let r =
        ok_or_fail "scenario"
          (Scenario.write_sequential factory p ~read_after_each:true ~rounds:1
             ~seed:3 ())
      in
      let expected = factory.expected_objects p in
      Alcotest.(check int)
        (Fmt.str "objects allocated (%s)" factory.name)
        expected
        (List.length (r.instance.objects ()));
      if r.objects_used > expected then
        Alcotest.failf "used %d > promised %d" r.objects_used expected;
      (* ABD-style emulations must be independent of k *)
      match factory.obj_kind with
      | Base_object.Max_register | Base_object.Cas ->
          Alcotest.(check int) "2f+1" ((2 * p.Params.f) + 1) expected
      | Base_object.Register -> ())

(* --- Per-algorithm specifics ------------------------------------------ *)

let misc_tests =
  [
    test "abd-max: usage independent of number of writers" (fun () ->
        let usage k =
          let p = params k 2 6 in
          let r =
            ok_or_fail "scenario"
              (Scenario.write_sequential Abd_max.factory p
                 ~read_after_each:false ~rounds:1 ~seed:5 ())
          in
          r.objects_used
        in
        Alcotest.(check int) "k=1 vs k=6" (usage 1) (usage 6));
    test "algorithm2: usage grows with number of writers" (fun () ->
        let usage k =
          let p = params k 2 6 in
          let r =
            ok_or_fail "scenario"
              (Scenario.write_sequential Regemu_core.Algorithm2.factory p
                 ~read_after_each:false ~rounds:1 ~seed:5 ())
          in
          List.length (r.instance.objects ())
        in
        Alcotest.(check bool) "monotone" true (usage 6 > usage 1));
    test "layered rejects n <> 2f+1" (fun () ->
        let p = params 2 1 4 in
        let sim = Sim.create ~n:4 () in
        let ws = List.init 2 (fun _ -> Sim.new_client sim) in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (Layered.factory.make sim p ~writers:ws);
             false
           with Invalid_argument _ -> true));
    test "naive-reg is fine under a benign synchronous schedule" (fun () ->
        let p = params 2 1 3 in
        let r =
          ok_or_fail "scenario"
            (Scenario.write_sequential Naive_reg.factory p
               ~read_after_each:true ~rounds:3 ~seed:7 ())
        in
        check_holds "ws-safe" (Ws_check.check_ws_safe r.history));
    test "crashing more than f servers can block liveness" (fun () ->
        let p = params 1 1 3 in
        let sim, instance, writers =
          Scenario.setup Regemu_core.Algorithm2.factory p
        in
        List.iter (Sim.crash_server sim) (Sim.servers sim);
        let call = instance.write (List.hd writers) (Value.Int 1) in
        match
          Driver.finish_call sim Policy.responds_first ~budget:10_000 call
        with
        | Error Driver.Stuck -> ()
        | Ok _ -> Alcotest.fail "write should not return with all servers down"
        | Error o -> Alcotest.failf "expected Stuck, got %a" Driver.outcome_pp o);
  ]

(* --- Standalone max-register constructions ----------------------------- *)

let drive_all sim policy calls =
  match
    Driver.run_until sim policy ~budget:100_000 (fun () ->
        List.for_all Sim.call_returned calls)
  with
  | Driver.Satisfied -> ()
  | o -> Alcotest.failf "drive_all: %a" Driver.outcome_pp o

(* random concurrent run of a standalone max-register; returns history *)
let random_maxreg_run ~write_max ~read_max ~clients ~sim ~seed ~ops =
  let rng = Regemu_sim.Rng.create seed in
  let policy = Policy.uniform (Regemu_sim.Rng.split rng) in
  let calls = ref [] in
  let planned = ref ops in
  let rec loop guard =
    if guard = 0 then Alcotest.fail "maxreg run did not finish";
    let idle = List.filter (fun c -> not (Sim.client_busy sim c)) clients in
    if !planned > 0 && idle <> [] && Regemu_sim.Rng.int rng ~bound:3 = 0 then begin
      let c = Regemu_sim.Rng.pick rng idle in
      decr planned;
      let call =
        if Regemu_sim.Rng.bool rng then
          write_max c (Value.Int (Regemu_sim.Rng.int rng ~bound:8))
        else read_max c
      in
      calls := call :: !calls;
      loop (guard - 1)
    end
    else if Driver.step sim policy then loop (guard - 1)
    else if !planned > 0 then loop (guard - 1)
    else ()
  in
  loop 100_000;
  drive_all sim policy !calls;
  History.of_trace (Sim.trace sim)

let cas_maxreg_tests =
  [
    test "cas-maxreg: sequential write-max/read-max" (fun () ->
        let sim = Sim.create ~n:1 () in
        let m = Cas_maxreg.create sim ~server:(Id.Server.of_int 0) in
        let c = Sim.new_client sim in
        let policy = Policy.responds_first in
        let w v =
          ignore
            (Driver.finish_call_exn sim policy ~budget:1_000
               (Cas_maxreg.write_max m c (Value.Int v)))
        in
        let r () =
          Driver.finish_call_exn sim policy ~budget:1_000
            (Cas_maxreg.read_max m c)
        in
        w 3;
        w 1;
        Alcotest.(check bool) "max is 3" true (Value.equal (r ()) (Value.Int 3));
        w 9;
        Alcotest.(check bool) "max is 9" true (Value.equal (r ()) (Value.Int 9)));
    test "cas-maxreg: single CAS object only" (fun () ->
        let sim = Sim.create ~n:1 () in
        let m = Cas_maxreg.create sim ~server:(Id.Server.of_int 0) in
        let c = Sim.new_client sim in
        ignore
          (Driver.finish_call_exn sim Policy.responds_first ~budget:1_000
             (Cas_maxreg.write_max m c (Value.Int 5)));
        Alcotest.(check int)
          "one object" 1
          (Id.Obj.Set.cardinal (Sim.used_objects sim)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"cas-maxreg: atomic under random schedules"
         ~count:150
         QCheck.(small_int)
         (fun seed ->
           let sim = Sim.create ~n:1 () in
           let m = Cas_maxreg.create sim ~server:(Id.Server.of_int 0) in
           let clients = List.init 3 (fun _ -> Sim.new_client sim) in
           let h =
             random_maxreg_run
               ~write_max:(Cas_maxreg.write_max m)
               ~read_max:(Cas_maxreg.read_max m)
               ~clients ~sim ~seed ~ops:6
           in
           Linearize.linearizable Linearize.max_register h));
  ]

let reg_maxreg_tests =
  [
    test "reg-maxreg: uses exactly k registers (Theorem 2 upper side)"
      (fun () ->
        let sim = Sim.create ~n:1 () in
        let writers = List.init 4 (fun _ -> Sim.new_client sim) in
        let m = Reg_maxreg.create sim ~server:(Id.Server.of_int 0) ~writers in
        Alcotest.(check int) "k registers" 4 (List.length (Reg_maxreg.objects m)));
    test "reg-maxreg: sequential semantics" (fun () ->
        let sim = Sim.create ~n:1 () in
        let writers = List.init 2 (fun _ -> Sim.new_client sim) in
        let m = Reg_maxreg.create sim ~server:(Id.Server.of_int 0) ~writers in
        let policy = Policy.responds_first in
        let w c v =
          ignore
            (Driver.finish_call_exn sim policy ~budget:1_000
               (Reg_maxreg.write_max m c (Value.Int v)))
        in
        let r c =
          Driver.finish_call_exn sim policy ~budget:1_000
            (Reg_maxreg.read_max m c)
        in
        let c0 = List.nth writers 0 and c1 = List.nth writers 1 in
        w c0 5;
        w c1 3;
        Alcotest.(check bool) "sees 5" true (Value.equal (r c1) (Value.Int 5));
        w c1 8;
        Alcotest.(check bool) "sees 8" true (Value.equal (r c0) (Value.Int 8)));
    test "reg-maxreg: non-writer rejected" (fun () ->
        let sim = Sim.create ~n:1 () in
        let writers = [ Sim.new_client sim ] in
        let m = Reg_maxreg.create sim ~server:(Id.Server.of_int 0) ~writers in
        let stranger = Sim.new_client sim in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (Reg_maxreg.write_max m stranger (Value.Int 1));
             false
           with Invalid_argument _ -> true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"reg-maxreg: atomic under random schedules (monotone collect)"
         ~count:150
         QCheck.(small_int)
         (fun seed ->
           let sim = Sim.create ~n:1 () in
           let writers = List.init 3 (fun _ -> Sim.new_client sim) in
           let m = Reg_maxreg.create sim ~server:(Id.Server.of_int 0) ~writers in
           let h =
             random_maxreg_run
               ~write_max:(Reg_maxreg.write_max m)
               ~read_max:(Reg_maxreg.read_max m)
               ~clients:writers ~sim ~seed ~ops:6
           in
           Linearize.linearizable Linearize.max_register h));
  ]

(* --- Randomized property: safety for random parameters ----------------- *)

let arb_seed_params =
  let gen =
    QCheck.Gen.(
      let* f = int_range 1 2 in
      let* k = int_range 1 4 in
      let* n = int_range ((2 * f) + 1) 9 in
      let* seed = int_range 0 1_000_000 in
      return (Params.make_exn ~k ~f ~n, seed))
  in
  QCheck.make gen ~print:(fun (p, seed) ->
      Fmt.str "%a seed=%d" Params.pp p seed)

let random_safety_tests =
  List.map
    (fun (factory, applies) ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:
             (Fmt.str "%s: WS-Regular on random runs" factory.Emulation.name)
           ~count:60 arb_seed_params
           (fun (p, seed) ->
             QCheck.assume (applies p);
             match
               Scenario.concurrent_reads factory p ~rounds:1 ~readers:2
                 ~crashes:(seed mod (p.Params.f + 1))
                 ~seed ()
             with
             | Error e -> QCheck.Test.fail_reportf "%a" Scenario.error_pp e
             | Ok r -> Ws_check.is_ws_regular r.history)))
    factories


(* --- layered construction: the per-server queueing discipline --------- *)

let layered_queueing_tests =
  [
    test "layered: a writer's second value is queued behind its own \
          pending write and converges" (fun () ->
        let p = params 1 1 3 in
        let sim = Sim.create ~n:3 () in
        let w = Sim.new_client sim in
        let inst = Layered.factory.make sim p ~writers:[ w ] in
        (* hold every response on server s0 while two writes complete via
           the other servers *)
        let block_s0 =
          Policy.filtered ~name:"hold-s0"
            ~keep:(fun sim' ev ->
              match ev with
              | Sim.Step _ -> true
              | Sim.Respond lid -> (
                  match
                    List.find_opt
                      (fun (pd : Sim.pending_info) -> Id.Lop.equal pd.lid lid)
                      (Sim.pending sim')
                  with
                  | Some pd ->
                      not
                        (Id.Server.equal (Sim.delta sim' pd.obj)
                           (Id.Server.of_int 0))
                  | None -> false))
            (Policy.uniform (Rng.create 4))
        in
        ignore
          (Driver.finish_call_exn sim block_s0 ~budget:50_000
             (inst.write w (Value.Int 1)));
        ignore
          (Driver.finish_call_exn sim block_s0 ~budget:50_000
             (inst.write w (Value.Int 2)));
        (* the writer never had two of its own writes pending on one
           register, despite s0 being silent the whole time *)
        (match
           Regemu_history.Invariants.single_pending_write_per_writer_register
             (Sim.trace sim)
         with
        | Ok () -> ()
        | Error v ->
            Alcotest.failf "%a" Regemu_history.Invariants.violation_pp v);
        (* now let s0 catch up under a fair policy; the queued current
           value reaches it and a reader sees the latest value *)
        let fair = Policy.uniform (Rng.create 9) in
        ignore (Driver.quiesce sim fair ~budget:1_000);
        let reader = Sim.new_client sim in
        let v =
          Driver.finish_call_exn sim fair ~budget:50_000 (inst.read reader)
        in
        Alcotest.(check bool) "latest" true (Value.equal v (Value.Int 2)));
  ]

let suites =
  [
    ("emulations:ws-safe", ws_safe_tests);
    ("emulations:ws-regular", ws_regular_tests);
    ("emulations:liveness", liveness_tests);
    ("emulations:usage", usage_tests);
    ("emulations:misc", misc_tests);
    ("emulations:cas-maxreg", cas_maxreg_tests);
    ("emulations:reg-maxreg", reg_maxreg_tests);
    ("emulations:random-safety", random_safety_tests);
    ("emulations:layered-queueing", layered_queueing_tests);
  ]

(* Cross-module properties: algebraic identities between the formulas,
   agreement between independent computations of the same quantity, and
   conservation laws over runs. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_history
open Regemu_core

let prop ?(count = 300) name arb p =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb p)

let gen_params ~f_max ~k_max ~n_max =
  QCheck.Gen.(
    let* f = int_range 1 f_max in
    let* k = int_range 1 k_max in
    let* n = int_range ((2 * f) + 1) n_max in
    return (Params.make_exn ~k ~f ~n))

let arb_params =
  QCheck.make (gen_params ~f_max:4 ~k_max:15 ~n_max:40)
    ~print:(fun p -> Fmt.str "%a" Params.pp p)

(* --- formula identities ------------------------------------------------- *)

let formula_props =
  [
    prop "the two lower-bound forms in the paper agree" arb_params (fun p ->
        (* Table 1 writes ceil(k / ((n-(f+1))/f)) * (f+1); Theorem 1
           writes ceil(kf / (n-(f+1))) * (f+1).  They are the same
           number. *)
        let table_form =
          (p.k * p.f)
          + Formulas.ceil_div (p.k * p.f) (p.n - (p.f + 1)) * (p.f + 1)
        in
        Formulas.register_lower_bound p = table_form);
    prop "upper bound = kf + m(f+1) with m = ceil(k/z)" arb_params (fun p ->
        Formulas.register_upper_bound p
        = (p.k * p.f) + (Formulas.num_sets p * (p.f + 1)));
    prop "z grows with n, never with f" arb_params (fun p ->
        let z_n = Formulas.z (Params.make_exn ~k:p.k ~f:p.f ~n:(p.n + 1)) in
        z_n >= Formulas.z p);
    prop "saturation is exact: bounds flatten at and only at n >= kf+f+1"
      arb_params (fun p ->
        let sat = Formulas.saturation_n ~k:p.k ~f:p.f in
        let at n = Formulas.register_lower_bound (Params.make_exn ~k:p.k ~f:p.f ~n) in
        at sat = (p.k * p.f) + p.f + 1
        && (sat <= (2 * p.f) + 1 || at (sat - 1) > (p.k * p.f) + p.f + 1));
    prop "every set's slack is exactly f per hosted writer" arb_params
      (fun p ->
        (* set i of size s_i hosts w_i writers; the paper's argument
           needs s_i - (f+1) = w_i * f so each writer can leave f
           registers covered while a quorum of f+1 stays clean *)
        let z = Formulas.z p in
        let sizes = Formulas.set_sizes p in
        let writers_in i =
          if i < p.k / z then z
          else p.k - (p.k / z * z) (* the overflow set, if any *)
        in
        List.for_all2
          (fun size w -> size - (p.f + 1) = w * p.f)
          sizes
          (List.init (List.length sizes) writers_in));
    prop "Theorem 7 at capacity >= kf needs exactly f+2 servers... or more"
      arb_params (fun p ->
        Formulas.min_servers ~k:p.k ~f:p.f ~capacity:(p.k * p.f)
        = p.f + 2);
  ]

(* --- layout vs formulas --------------------------------------------------- *)

let small_params =
  QCheck.make (gen_params ~f_max:3 ~k_max:8 ~n_max:16)
    ~print:(fun p -> Fmt.str "%a" Params.pp p)

let layout_props =
  [
    prop ~count:150 "objects_on partitions all_objects" small_params (fun p ->
        let sim = Sim.create ~n:p.Params.n () in
        let layout = Layout.build sim p in
        let by_server =
          List.concat_map (Layout.objects_on layout) (Sim.servers sim)
        in
        List.sort compare (List.map Id.Obj.to_int by_server)
        = List.sort compare (List.map Id.Obj.to_int (Layout.all_objects layout)));
    prop ~count:150 "set_for_slot agrees with set/set_index_for_slot"
      small_params (fun p ->
        let sim = Sim.create ~n:p.Params.n () in
        let layout = Layout.build sim p in
        List.for_all
          (fun slot ->
            Layout.set_for_slot layout ~slot
            == Layout.set layout (Layout.set_index_for_slot layout ~slot))
          (List.init p.Params.k Fun.id));
    prop ~count:150 "per-server load is balanced within sets count"
      small_params (fun p ->
        let sim = Sim.create ~n:p.Params.n () in
        let layout = Layout.build sim p in
        List.for_all
          (fun s ->
            List.length (Layout.objects_on layout s)
            <= Layout.num_sets layout)
          (Sim.servers sim));
  ]

(* --- conservation over runs ------------------------------------------------ *)

let arb_seed =
  QCheck.make QCheck.Gen.(int_range 0 1_000_000) ~print:string_of_int

let run_props =
  [
    prop ~count:50 "history length = invocation count" arb_seed (fun seed ->
        let p = Params.make_exn ~k:2 ~f:1 ~n:4 in
        match
          Regemu_workload.Scenario.chaos Algorithm2.factory p
            ~writes_per_writer:2 ~readers:1 ~reads_per_reader:2 ~crashes:0
            ~seed ()
        with
        | Error _ -> false
        | Ok r ->
            let stats = Stats.of_trace (Sim.trace r.sim) in
            List.length r.history = stats.invocations
            && stats.invocations = stats.returns);
    prop ~count:50 "triggers = responds + final pending" arb_seed (fun seed ->
        let p = Params.make_exn ~k:2 ~f:1 ~n:4 in
        match
          Regemu_workload.Scenario.concurrent_reads Algorithm2.factory p
            ~rounds:1 ~readers:1 ~crashes:1 ~seed ()
        with
        | Error _ -> false
        | Ok r ->
            let stats = Stats.of_trace (Sim.trace r.sim) in
            stats.triggers = stats.responds + List.length (Sim.pending r.sim));
    prop ~count:50 "sequential scenarios have point contention 1" arb_seed
      (fun seed ->
        let p = Params.make_exn ~k:2 ~f:1 ~n:4 in
        match
          Regemu_workload.Scenario.write_sequential Algorithm2.factory p
            ~read_after_each:true ~rounds:1 ~seed ()
        with
        | Error _ -> false
        | Ok r -> (Stats.of_trace (Sim.trace r.sim)).point_contention = 1);
    prop ~count:50 "latency list length = completed operations" arb_seed
      (fun seed ->
        let p = Params.make_exn ~k:1 ~f:1 ~n:3 in
        match
          Regemu_workload.Scenario.write_sequential Algorithm2.factory p
            ~read_after_each:true ~rounds:2 ~seed ()
        with
        | Error _ -> false
        | Ok r ->
            List.length (Stats.latencies (Sim.trace r.sim))
            = List.length (History.complete r.history));
    prop ~count:30 "adversarial usage formula: used = upper bound for alg2"
      arb_seed (fun seed ->
        let p = Params.make_exn ~k:3 ~f:1 ~n:5 in
        match Regemu_adversary.Lowerbound.execute Algorithm2.factory p ~seed () with
        | Error _ -> false
        | Ok run ->
            run.final_objects_used = Formulas.register_upper_bound p);
  ]

(* --- value algebra ----------------------------------------------------------- *)

let value_props =
  [
    prop "with_ts is injective on (ts, payload)"
      QCheck.(pair (pair small_int small_int) (pair small_int small_int))
      (fun ((t1, p1), (t2, p2)) ->
        let v1 = Value.with_ts t1 (Value.Int p1) in
        let v2 = Value.with_ts t2 (Value.Int p2) in
        Value.equal v1 v2 = (t1 = t2 && p1 = p2));
    prop "ts ordering dominates payload ordering"
      QCheck.(pair (pair small_int small_int) (pair small_int small_int))
      (fun ((t1, p1), (t2, p2)) ->
        let v1 = Value.with_ts t1 (Value.Int p1) in
        let v2 = Value.with_ts t2 (Value.Int p2) in
        t1 = t2 || compare (Value.compare v1 v2 > 0) (t1 > t2) = 0);
    prop "max is associative"
      QCheck.(triple small_int small_int small_int)
      (fun (a, b, c) ->
        let va = Value.Int a and vb = Value.Int b and vc = Value.Int c in
        Value.equal
          (Value.max va (Value.max vb vc))
          (Value.max (Value.max va vb) vc));
  ]

let suites =
  [
    ("props:formulas", formula_props);
    ("props:layout", layout_props);
    ("props:runs", run_props);
    ("props:values", value_props);
  ]

(* Tests for the trace well-formedness oracle, plus the property that
   every run the simulator can produce is well-formed. *)

open Regemu_objects
open Regemu_sim
open Regemu_history

let test name f = Alcotest.test_case name `Quick f
let c0 = Id.Client.of_int 0
let s0 = Id.Server.of_int 0
let lid i = Id.Lop.of_int i
let b0 = Id.Obj.of_int 0

let trig i op =
  Trace.Trigger { lid = lid i; client = c0; obj = b0; op }

let resp i op result =
  Trace.Respond { lid = lid i; client = c0; obj = b0; op; result }

let mk entries =
  let tr = Trace.create () in
  List.iter (Trace.record tr) entries;
  tr

let expect_ok tr =
  match Wellformed.check tr with
  | Ok () -> ()
  | Error v -> Alcotest.failf "unexpected: %a" Wellformed.violation_pp v

let expect_bad tr what =
  match Wellformed.check tr with
  | Ok () -> Alcotest.failf "expected violation (%s)" what
  | Error _ -> ()

let unit_tests =
  [
    test "empty trace is well-formed" (fun () -> expect_ok (mk []));
    test "trigger then respond is well-formed" (fun () ->
        expect_ok
          (mk
             [
               trig 0 (Base_object.Write (Value.Int 1));
               resp 0 (Base_object.Write (Value.Int 1)) Value.Unit;
             ]));
    test "respond without trigger rejected" (fun () ->
        expect_bad (mk [ resp 0 Base_object.Read Value.Unit ]) "orphan");
    test "double respond rejected" (fun () ->
        expect_bad
          (mk
             [
               trig 0 Base_object.Read;
               resp 0 Base_object.Read Value.Unit;
               resp 0 Base_object.Read Value.Unit;
             ])
          "double");
    test "respond for different op rejected" (fun () ->
        expect_bad
          (mk
             [
               trig 0 Base_object.Read;
               resp 0 (Base_object.Write (Value.Int 1)) Value.Unit;
             ])
          "op mismatch");
    test "double invoke rejected" (fun () ->
        expect_bad
          (mk [ Trace.Invoke (c0, Trace.H_read); Trace.Invoke (c0, Trace.H_read) ])
          "busy");
    test "return without invoke rejected" (fun () ->
        expect_bad
          (mk [ Trace.Return (c0, Trace.H_read, Value.Unit) ])
          "no invoke");
    test "double crash rejected" (fun () ->
        expect_bad
          (mk [ Trace.Server_crash s0; Trace.Server_crash s0 ])
          "double crash");
    test "replay check catches a wrong response value" (fun () ->
        let tr =
          mk
            [
              trig 0 (Base_object.Write (Value.Int 1));
              resp 0 (Base_object.Write (Value.Int 1)) Value.Unit;
              trig 1 Base_object.Read;
              resp 1 Base_object.Read (Value.Int 99) (* should be 1 *);
            ]
        in
        match Wellformed.check_replay tr ~kind_of:(fun _ -> Base_object.Register) with
        | Ok () -> Alcotest.fail "expected replay violation"
        | Error _ -> ());
    test "replay check accepts a consistent trace" (fun () ->
        let tr =
          mk
            [
              trig 0 (Base_object.Write (Value.Int 1));
              resp 0 (Base_object.Write (Value.Int 1)) Value.Unit;
              trig 1 Base_object.Read;
              resp 1 Base_object.Read (Value.Int 1);
            ]
        in
        match Wellformed.check_replay tr ~kind_of:(fun _ -> Base_object.Register) with
        | Ok () -> ()
        | Error v -> Alcotest.failf "unexpected: %a" Wellformed.violation_pp v);
  ]

(* Every run the simulator can produce is well-formed, including the
   replayed semantics: this validates Assumption 1's implementation. *)
let arb_run_config =
  QCheck.make
    QCheck.Gen.(
      let* seed = int_range 0 1_000_000 in
      let* crashes = int_range 0 1 in
      return (seed, crashes))
    ~print:(fun (s, c) -> Fmt.str "seed=%d crashes=%d" s c)

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"all simulator runs are structurally well-formed" ~count:80
         arb_run_config
         (fun (seed, crashes) ->
           let p = Regemu_bounds.Params.make_exn ~k:2 ~f:1 ~n:4 in
           match
             Regemu_workload.Scenario.chaos Regemu_core.Algorithm2.factory p
               ~writes_per_writer:2 ~readers:1 ~reads_per_reader:2 ~crashes
               ~seed ()
           with
           | Error _ -> false
           | Ok r -> (
               let tr = Sim.trace r.sim in
               match
                 ( Wellformed.check tr,
                   Wellformed.check_replay tr ~kind_of:(Sim.kind_of r.sim) )
               with
               | Ok (), Ok () -> true
               | Error v, _ | _, Error v ->
                   QCheck.Test.fail_reportf "%a" Wellformed.violation_pp v)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"adversarial runs are structurally well-formed too" ~count:30
         arb_run_config
         (fun (seed, _) ->
           let p = Regemu_bounds.Params.make_exn ~k:3 ~f:1 ~n:5 in
           match
             Regemu_adversary.Lowerbound.execute Regemu_core.Algorithm2.factory
               p ~seed ()
           with
           | Error _ -> false
           | Ok run -> (
               match
                 ( Wellformed.check run.trace,
                   Wellformed.check_replay run.trace ~kind_of:run.kind_of )
               with
               | Ok (), Ok () -> true
               | Error v, _ | _, Error v ->
                   QCheck.Test.fail_reportf "%a" Wellformed.violation_pp v)));
  ]

let suites =
  [
    ("wellformed:unit", unit_tests);
    ("wellformed:properties", property_tests);
  ]

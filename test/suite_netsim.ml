(* Tests for the message-passing substrate and ABD over it. *)

open Regemu_objects
open Regemu_history
open Regemu_netsim

let test name f = Alcotest.test_case name `Quick f

(* drive a net run with a seeded uniform environment *)
let drive net rng ~budget ~goal =
  let rec go budget =
    if goal () then true
    else if budget = 0 then false
    else
      match Net.enabled net with
      | [] -> false
      | evs ->
          Net.fire net (Regemu_sim.Rng.pick rng evs);
          go (budget - 1)
  in
  go budget

let finish net rng call =
  if not (drive net rng ~budget:50_000 ~goal:(fun () -> Net.call_returned call))
  then Alcotest.fail "operation did not return";
  Option.get (Net.call_result call)

(* --- network basics ----------------------------------------------------- *)

let net_tests =
  [
    test "messages are delivered and counted" (fun () ->
        let net = Net.create ~n:3 () in
        let c = Net.new_client net in
        let rid = Net.fresh_rid net in
        let got = ref None in
        Net.on_reply net ~client:c ~rid (fun p -> got := Some p);
        Net.send net ~from:c (Id.Server.of_int 0) (Net.Query { rid });
        Alcotest.(check int) "one in flight" 1 (Net.in_flight net);
        (* deliver the request, then the reply *)
        let rec drain () =
          match Net.enabled net with
          | Net.Deliver m :: _ ->
              Net.fire net (Net.Deliver m);
              drain ()
          | _ -> ()
        in
        drain ();
        Alcotest.(check int) "delivered both" 2 (Net.delivered net);
        match !got with
        | Some (Net.Query_reply { stored; _ }) ->
            Alcotest.(check bool) "v0" true (Value.equal stored Value.v0)
        | _ -> Alcotest.fail "expected a query reply");
    test "messages to crashed servers are never deliverable" (fun () ->
        let net = Net.create ~n:3 () in
        let c = Net.new_client net in
        let rid = Net.fresh_rid net in
        Net.send net ~from:c (Id.Server.of_int 1) (Net.Query { rid });
        Net.crash_server net (Id.Server.of_int 1);
        Alcotest.(check int) "nothing enabled" 0 (List.length (Net.enabled net));
        Alcotest.(check int) "still in flight" 1 (Net.in_flight net));
    test "server update keeps the max" (fun () ->
        let net = Net.create ~n:1 () in
        let c = Net.new_client net in
        let send_update v =
          let rid = Net.fresh_rid net in
          Net.on_reply net ~client:c ~rid (fun _ -> ());
          Net.send net ~from:c (Id.Server.of_int 0)
            (Net.Update { rid; proposed = v })
        in
        send_update (Value.with_ts 2 (Value.Str "b"));
        send_update (Value.with_ts 1 (Value.Str "a"));
        let rec drain () =
          match Net.enabled net with
          | ev :: _ ->
              Net.fire net ev;
              drain ()
          | [] -> ()
        in
        drain ();
        (* a query now returns ts 2 *)
        let rid = Net.fresh_rid net in
        let got = ref Value.v0 in
        Net.on_reply net ~client:c ~rid (fun p ->
            match p with
            | Net.Query_reply { stored; _ } -> got := stored
            | _ -> ());
        Net.send net ~from:c (Id.Server.of_int 0) (Net.Query { rid });
        drain ();
        Alcotest.(check int) "ts" 2 (Value.ts !got));
  ]

(* --- ABD over the network ------------------------------------------------ *)

let abd_tests =
  [
    test "sequential write then read returns the value" (fun () ->
        let net = Net.create ~n:3 () in
        let abd = Abd_net.create net ~f:1 () in
        let w = Net.new_client net and r = Net.new_client net in
        let rng = Regemu_sim.Rng.create 11 in
        ignore (finish net rng (Abd_net.write abd w (Value.Str "x")));
        let v = finish net rng (Abd_net.read abd r) in
        Alcotest.(check bool) "x" true (Value.equal v (Value.Str "x")));
    test "survives f crashed servers" (fun () ->
        let net = Net.create ~n:5 () in
        let abd = Abd_net.create net ~f:2 () in
        let w = Net.new_client net and r = Net.new_client net in
        let rng = Regemu_sim.Rng.create 3 in
        Net.crash_server net (Id.Server.of_int 0);
        Net.crash_server net (Id.Server.of_int 3);
        ignore (finish net rng (Abd_net.write abd w (Value.Str "y")));
        let v = finish net rng (Abd_net.read abd r) in
        Alcotest.(check bool) "y" true (Value.equal v (Value.Str "y")));
    test "blocks when f+1 servers crash (majority lost)" (fun () ->
        let net = Net.create ~n:3 () in
        let abd = Abd_net.create net ~f:1 () in
        let w = Net.new_client net in
        Net.crash_server net (Id.Server.of_int 0);
        Net.crash_server net (Id.Server.of_int 1);
        let rng = Regemu_sim.Rng.create 5 in
        let call = Abd_net.write abd w (Value.Str "z") in
        Alcotest.(check bool)
          "stuck" false
          (drive net rng ~budget:5_000 ~goal:(fun () ->
               Net.call_returned call)));
    test "uses 2f+1 replicas" (fun () ->
        let net = Net.create ~n:9 () in
        let abd = Abd_net.create net ~f:3 () in
        Alcotest.(check int) "replicas" 7 (Abd_net.replicas abd));
    test "rejects too few servers" (fun () ->
        let net = Net.create ~n:2 () in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (Abd_net.create net ~f:1 ());
             false
           with Invalid_argument _ -> true));
  ]

(* --- duplication (at-least-once delivery) -------------------------------- *)

let duplication_tests =
  [
    test "a duplicated reply does not double-count toward a quorum" (fun () ->
        let net = Net.create ~n:3 () in
        let abd = Abd_net.create net ~f:1 () in
        let w = Net.new_client net in
        let call = Abd_net.write abd w (Value.Str "x") in
        (* deliver the three query requests; three replies appear *)
        let rec deliver_all () =
          match Net.enabled net with
          | Net.Deliver m :: _ ->
              Net.fire net (Net.Deliver m);
              deliver_all ()
          | _ -> ()
        in
        (* duplicate the first in-flight message several times before
           anything is delivered, then let everything through *)
        (match Net.enabled net with
        | Net.Deliver m :: _ ->
            Net.duplicate net m;
            Net.duplicate net m
        | _ -> Alcotest.fail "expected in-flight requests");
        deliver_all ();
        (* the write must still be waiting for its update phase to be
           triggered and acknowledged — run to completion fairly *)
        let rng = Regemu_sim.Rng.create 1 in
        Alcotest.(check bool)
          "write completes" true
          (drive net rng ~budget:10_000 ~goal:(fun () ->
               Net.call_returned call)));
    test "duplicating a non-existent message is rejected" (fun () ->
        let net = Net.create ~n:3 () in
        Alcotest.(check bool)
          "raises" true
          (try
             Net.duplicate net 99;
             false
           with Invalid_argument _ -> true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"ABD stays correct under random message duplication"
         ~count:60
         (QCheck.make QCheck.Gen.(int_range 0 1_000_000) ~print:string_of_int)
         (fun seed ->
           let net = Net.create ~n:3 () in
           let abd = Abd_net.create net ~f:1 ~write_back_reads:true () in
           let w = Net.new_client net and r = Net.new_client net in
           let rng = Regemu_sim.Rng.create seed in
           let finish call =
             let rec go budget =
               if Net.call_returned call then true
               else if budget = 0 then false
               else begin
                 (* duplicate a random in-flight message now and then *)
                 (if
                    Net.in_flight net > 0
                    && Regemu_sim.Rng.int rng ~bound:5 = 0
                  then
                    match Net.enabled net with
                    | Net.Deliver m :: _ -> Net.duplicate net m
                    | _ -> ());
                 (match Net.enabled net with
                 | [] -> ()
                 | evs -> Net.fire net (Regemu_sim.Rng.pick rng evs));
                 go (budget - 1)
               end
             in
             go 50_000
           in
           finish (Abd_net.write abd w (Value.Str "a"))
           && finish (Abd_net.read abd r)
           && finish (Abd_net.write abd w (Value.Str "b"))
           && finish (Abd_net.read abd r)
           && Regularity.is_atomic (Net.history net)));
  ]

(* --- randomized safety --------------------------------------------------- *)

let arb_seed = QCheck.make QCheck.Gen.(int_range 0 1_000_000) ~print:string_of_int

(* sequential writes by two writers, reads interleaved concurrently *)
let random_run ~write_back ~seed =
  let net = Net.create ~n:3 () in
  let abd = Abd_net.create net ~f:1 ~write_back_reads:write_back () in
  let w1 = Net.new_client net and w2 = Net.new_client net in
  let r1 = Net.new_client net and r2 = Net.new_client net in
  let rng = Regemu_sim.Rng.create seed in
  let reads = ref [] in
  let drive_with_reads call =
    let rec go budget =
      if budget = 0 then Alcotest.fail "write stalled";
      if Net.call_returned call then ()
      else begin
        (if Regemu_sim.Rng.int rng ~bound:12 = 0 then
           let idle =
             List.filter
               (fun (_, busy) -> not (busy ()))
               [
                 (r1, fun () -> List.exists (fun (c', call) -> Id.Client.equal c' r1 && not (Net.call_returned call)) !reads);
                 (r2, fun () -> List.exists (fun (c', call) -> Id.Client.equal c' r2 && not (Net.call_returned call)) !reads);
               ]
           in
           match idle with
           | (c, _) :: _ -> reads := (c, Abd_net.read abd c) :: !reads
           | [] -> ());
        (match Net.enabled net with
        | [] -> ()
        | evs -> Net.fire net (Regemu_sim.Rng.pick rng evs));
        go (budget - 1)
      end
    in
    go 50_000
  in
  drive_with_reads (Abd_net.write abd w1 (Value.Str "a"));
  drive_with_reads (Abd_net.write abd w2 (Value.Str "b"));
  drive_with_reads (Abd_net.write abd w1 (Value.Str "c"));
  (* drain outstanding reads *)
  let all_done () =
    List.for_all (fun (_, call) -> Net.call_returned call) !reads
  in
  if not (drive net rng ~budget:100_000 ~goal:all_done) then
    Alcotest.fail "reads stalled";
  Net.history net

let random_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"net-ABD is WS-Regular under random message reordering"
         ~count:80 arb_seed
         (fun seed -> Ws_check.is_ws_regular (random_run ~write_back:false ~seed)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"net-ABD with read write-back is atomic"
         ~count:60 arb_seed
         (fun seed -> Regularity.is_atomic (random_run ~write_back:true ~seed)));
  ]

(* --- scenario runners over the network ------------------------------------ *)

let ok_or_fail = function
  | Ok r -> r
  | Error e -> Alcotest.failf "%a" Net_scenario.error_pp e

let p_net = Regemu_bounds.Params.make_exn ~k:2 ~f:1 ~n:4

let scenario_tests =
  [
    test "sequential scenario: WS-Safe with crashes and duplication"
      (fun () ->
        let r =
          ok_or_fail
            (Net_scenario.write_sequential ~p:p_net ~rounds:2 ~crashes:1
               ~duplication:true ~seed:5 ())
        in
        (match Ws_check.check_ws_safe r.history with
        | Ws_check.Holds -> ()
        | v -> Alcotest.failf "ws-safe: %a" Ws_check.verdict_pp v);
        Alcotest.(check bool)
          "delivered messages" true
          (r.messages_delivered > 0));
    test "concurrent-reads scenario: WS-Regular" (fun () ->
        let r =
          ok_or_fail
            (Net_scenario.concurrent_reads ~p:p_net ~rounds:2 ~readers:2
               ~crashes:1 ~duplication:false ~seed:7 ())
        in
        match Ws_check.check_ws_regular r.history with
        | Ws_check.Holds | Ws_check.Vacuous -> ()
        | v -> Alcotest.failf "ws-regular: %a" Ws_check.verdict_pp v);
    test "message conservation: sent = delivered + in_flight" (fun () ->
        let r =
          ok_or_fail
            (Net_scenario.concurrent_reads
               ~protocol:(Net_scenario.abd ~write_back:true) ~p:p_net
               ~rounds:2 ~readers:2 ~crashes:1 ~duplication:true ~seed:13 ())
        in
        Alcotest.(check int)
          "conserved"
          (Net.sent r.net)
          (Net.delivered r.net + Net.in_flight r.net));
    test "crashes beyond f rejected" (fun () ->
        Alcotest.(check bool)
          "raises" true
          (try
             ignore
               (Net_scenario.write_sequential ~p:p_net ~rounds:1 ~crashes:2
                  ~duplication:false ~seed:1 ());
             false
           with Invalid_argument _ -> true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "net scenarios with write-back are atomic under duplication and \
            crashes"
         ~count:40 arb_seed
         (fun seed ->
           let r =
             match
               Net_scenario.concurrent_reads
                 ~protocol:(Net_scenario.abd ~write_back:true) ~p:p_net
                 ~rounds:1 ~readers:2 ~crashes:(seed mod 2)
                 ~duplication:(seed mod 3 = 0) ~seed ()
             with
             | Ok r -> r
             | Error e -> Alcotest.failf "%a" Net_scenario.error_pp e
           in
           Regularity.is_atomic r.history));
  ]

let alg2_scenario_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "wire-level algorithm2 stays WS-Safe in net scenarios (crashes +             duplication)"
         ~count:40 arb_seed
         (fun seed ->
           match
             Net_scenario.write_sequential ~protocol:Net_scenario.alg2
               ~p:p_net ~rounds:2 ~crashes:(seed mod 2)
               ~duplication:(seed mod 3 = 0) ~seed ()
           with
           | Error e -> Alcotest.failf "%a" Net_scenario.error_pp e
           | Ok r -> Ws_check.is_ws_safe r.history));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"wire-level algorithm2 is WS-Regular with concurrent readers"
         ~count:30 arb_seed
         (fun seed ->
           match
             Net_scenario.concurrent_reads ~protocol:Net_scenario.alg2
               ~p:p_net ~rounds:1 ~readers:2 ~crashes:(seed mod 2)
               ~duplication:false ~seed ()
           with
           | Error e -> Alcotest.failf "%a" Net_scenario.error_pp e
           | Ok r -> Ws_check.is_ws_regular r.history));
  ]


(* --- wire fuzzing ---------------------------------------------------------- *)

let net_fuzz_tests =
  [
    test "abd and wire-algorithm2 fuzz clean" (fun () ->
        List.iter
          (fun protocol ->
            let o =
              Net_fuzz.run ~protocol ~p:p_net ~runs:12 ~seed:50 ()
            in
            Alcotest.(check int)
              (Fmt.str "%s clean" protocol.Net_scenario.name)
              0
              (o.ws_safe_violations + o.ws_regular_violations
              + o.liveness_failures))
          [
            Net_scenario.abd ~write_back:false;
            Net_scenario.abd ~write_back:true;
            Net_scenario.alg2;
          ]);
    test "fuzz outcome bookkeeping" (fun () ->
        let o =
          Net_fuzz.run ~protocol:Net_scenario.alg2 ~p:p_net ~runs:5 ~seed:1 ()
        in
        Alcotest.(check int) "runs" 5 o.runs;
        Alcotest.(check (option int)) "no bad seed" None o.first_bad_seed);
  ]

let suites =
  [
    ("netsim:network", net_tests);
    ("netsim:abd", abd_tests);
    ("netsim:duplication", duplication_tests);
    ("netsim:random", random_tests);
    ("netsim:scenarios", scenario_tests);
    ("netsim:alg2-scenarios", alg2_scenario_tests);
    ("netsim:fuzz", net_fuzz_tests);
  ]

(* Tests for the experiment harness: the reproduction tables must have
   the paper's shape, not just render. *)

open Regemu_bounds
open Regemu_harness

let test name f = Alcotest.test_case name `Quick f

(* --- Report rendering -------------------------------------------------- *)

let report_tests =
  [
    test "columns align and all rows render" (fun () ->
        let r =
          {
            Report.title = "t";
            headers = [ "a"; "long-header" ];
            rows = [ [ "1"; "2" ]; [ "wide-cell"; "x" ] ];
          }
        in
        let s = Fmt.str "%a" Report.pp r in
        Alcotest.(check bool) "title" true (Astring_contains.contains s "== t ==");
        Alcotest.(check bool) "row" true (Astring_contains.contains s "wide-cell"));
    test "cell helpers" (fun () ->
        Alcotest.(check string) "int" "42" (Report.cell_int 42);
        Alcotest.(check string) "bool" "yes" (Report.cell_bool true);
        Alcotest.(check string) "fmt" "1.50" (Report.cellf "%.2f" 1.5));
    test "markdown rendering" (fun () ->
        let r =
          {
            Report.title = "T";
            headers = [ "a"; "b" ];
            rows = [ [ "1"; "2" ] ];
          }
        in
        Alcotest.(check string)
          "md" "## T\n\n| a | b |\n| --- | --- |\n| 1 | 2 |\n"
          (Report.to_markdown r));
  ]

(* --- Table 1 ------------------------------------------------------------ *)

let table1_rows =
  lazy
    (Table1.compute
       ~grid:
         [
           Params.make_exn ~k:1 ~f:1 ~n:3;
           Params.make_exn ~k:3 ~f:1 ~n:3;
           Params.make_exn ~k:3 ~f:1 ~n:8;
         ]
       ~seed:5 ())

let table1_tests =
  [
    test "three rows per parameter triple" (fun () ->
        Alcotest.(check int) "rows" 9 (List.length (Lazy.force table1_rows)));
    test "every run was safe" (fun () ->
        List.iter
          (fun (r : Table1.row) ->
            Alcotest.(check bool) r.base true r.safety_ok)
          (Lazy.force table1_rows));
    test "usage within bounds everywhere" (fun () ->
        List.iter
          (fun (r : Table1.row) ->
            if r.used_fair > r.bound_upper then
              Alcotest.failf "%s at %a: %d > %d" r.base Params.pp r.params
                r.used_fair r.bound_upper;
            match r.used_adversarial with
            | Some u when u < r.bound_lower ->
                Alcotest.failf "%s at %a: adversarial %d < lower %d" r.base
                  Params.pp r.params u r.bound_lower
            | _ -> ())
          (Lazy.force table1_rows));
    test "max-register/CAS rows independent of k" (fun () ->
        let rows = Lazy.force table1_rows in
        let usage base k =
          List.find_map
            (fun (r : Table1.row) ->
              if r.base = base && r.params.Params.k = k && r.params.Params.n = 3
              then Some r.used_fair
              else None)
            rows
        in
        Alcotest.(check (option int))
          "maxreg" (usage "max-register" 1) (usage "max-register" 3);
        Alcotest.(check (option int)) "cas" (usage "CAS" 1) (usage "CAS" 3));
    test "register row grows with k and shrinks with n" (fun () ->
        let rows = Lazy.force table1_rows in
        let reg k n =
          List.find_map
            (fun (r : Table1.row) ->
              if
                r.base = "register" && r.params.Params.k = k
                && r.params.Params.n = n
              then Some r.used_fair
              else None)
            rows
        in
        let get = function Some x -> x | None -> Alcotest.fail "missing row" in
        Alcotest.(check bool) "grows in k" true (get (reg 3 3) > get (reg 1 3));
        Alcotest.(check bool)
          "shrinks in n" true
          (get (reg 3 8) < get (reg 3 3)));
    test "report renders one line per row plus 3" (fun () ->
        let rows = Lazy.force table1_rows in
        let rendered = Fmt.str "%a" Report.pp (Table1.report rows) in
        let lines =
          List.filter (fun l -> l <> "") (String.split_on_char '\n' rendered)
        in
        Alcotest.(check int) "lines" (List.length rows + 3) (List.length lines));
  ]

(* --- Figures ------------------------------------------------------------ *)

let figures_tests =
  [
    test "figure 1 renders the paper's parameters" (fun () ->
        let s = Figures.figure1 () in
        Alcotest.(check bool) "mentions all servers" true
          (Astring_contains.contains s "s5:");
        Alcotest.(check bool) "25 registers" true
          (Astring_contains.contains s "25 registers"));
    test "figure 2 ends in a violation" (fun () ->
        match Figures.figure2 ~f:1 () with
        | Error e -> Alcotest.failf "failed: %s" e
        | Ok s ->
            Alcotest.(check bool) "violated" true
              (Astring_contains.contains s "VIOLATED"));
  ]

(* --- Theorem reports ------------------------------------------------------ *)

let theorem_tests =
  [
    test "lemma1 report has k rows, all lemma2-clean" (fun () ->
        match Theorems.lemma1 ~params:(Params.make_exn ~k:3 ~f:1 ~n:4) ~seed:1 () with
        | Error e -> Alcotest.failf "failed: %s" e
        | Ok r ->
            Alcotest.(check int) "rows" 3 (List.length r.rows);
            List.iter
              (fun row ->
                Alcotest.(check string) "lemma2 ok" "ok"
                  (List.nth row (List.length row - 1)))
              r.rows);
    test "theorem1 sweep: gap column is never negative and closes" (fun () ->
        let r = Theorems.theorem1_sweep ~k:5 ~f:2 () in
        let gaps =
          List.map (fun row -> int_of_string (List.nth row 4)) r.rows
        in
        List.iter
          (fun g -> if g < 0 then Alcotest.fail "negative gap")
          gaps;
        (* first and last rows have zero gap (coincidence points) *)
        Alcotest.(check int) "first" 0 (List.hd gaps);
        Alcotest.(check int) "last" 0 (List.nth gaps (List.length gaps - 1)));
    test "theorem2 rows are all tight" (fun () ->
        let r = Theorems.theorem2 ~ks:[ 1; 3; 9 ] in
        List.iter
          (fun row -> Alcotest.(check string) "tight" "yes" (List.nth row 3))
          r.rows);
    test "theorem6 all servers meet the bound" (fun () ->
        let r = Theorems.theorem6 ~k:3 ~f:1 in
        Alcotest.(check int) "2f+1 rows" 3 (List.length r.rows);
        List.iter
          (fun row -> Alcotest.(check string) "meets" "yes" (List.nth row 3))
          r.rows);
    test "theorem7 feasibility is consistent with the bound" (fun () ->
        let r = Theorems.theorem7 ~k:4 ~f:1 ~capacities:[ 1; 2; 4 ] in
        List.iter
          (fun row ->
            Alcotest.(check string) "consistent" "yes" (List.nth row 3))
          r.rows);
    test "theorem8: usage column non-decreasing, contention constant 1"
      (fun () ->
        match
          Theorems.theorem8 ~params:(Params.make_exn ~k:4 ~f:1 ~n:10) ~seed:3 ()
        with
        | Error e -> Alcotest.failf "failed: %s" e
        | Ok r ->
            let covered =
              List.map (fun row -> int_of_string (List.nth row 2)) r.rows
            in
            let rec non_decreasing = function
              | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
              | _ -> true
            in
            Alcotest.(check bool) "monotone" true (non_decreasing covered);
            List.iter
              (fun row -> Alcotest.(check string) "pc" "1" (List.nth row 1))
              r.rows);
    test "algorithm1 time: CAS per op at least 2 when values increase"
      (fun () ->
        let r =
          Theorems.algorithm1_time ~writers_list:[ 1 ] ~ops_per_writer:5
            ~seed:1
        in
        match r.rows with
        | [ row ] ->
            let per_op = float_of_string (List.nth row 3) in
            Alcotest.(check bool) "at least 2" true (per_op >= 2.0)
        | _ -> Alcotest.fail "expected one row");
  ]

(* --- Timeline ------------------------------------------------------------ *)

let timeline_tests =
  [
    test "coverage curve follows pending register writes" (fun () ->
        let open Regemu_objects in
        let open Regemu_sim in
        let sim = Sim.create ~n:2 () in
        let a = Sim.alloc sim ~server:(Id.Server.of_int 0) Base_object.Register in
        let b = Sim.alloc sim ~server:(Id.Server.of_int 1) Base_object.Register in
        let c = Sim.new_client sim in
        let l1 =
          Sim.trigger sim ~client:c a (Base_object.Write (Value.Int 1))
            ~on_response:ignore
        in
        ignore
          (Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 2))
             ~on_response:ignore);
        Sim.fire sim (Sim.Respond l1);
        Alcotest.(check (list int))
          "curve" [ 1; 2; 1 ]
          (Timeline.coverage_curve (Sim.trace sim)));
    test "reads do not count as coverage" (fun () ->
        let open Regemu_objects in
        let open Regemu_sim in
        let sim = Sim.create ~n:1 () in
        let a = Sim.alloc sim ~server:(Id.Server.of_int 0) Base_object.Register in
        let c = Sim.new_client sim in
        ignore (Sim.trigger sim ~client:c a Base_object.Read ~on_response:ignore);
        Alcotest.(check (list int))
          "curve" [ 0 ]
          (Timeline.coverage_curve (Sim.trace sim)));
    test "adversarial timeline renders a non-decreasing staircase" (fun () ->
        let p = Params.make_exn ~k:3 ~f:1 ~n:4 in
        match
          Regemu_adversary.Lowerbound.execute Regemu_core.Algorithm2.factory p
            ~seed:4 ()
        with
        | Error e -> Alcotest.failf "run failed: %s" e
        | Ok run ->
            let curve = Timeline.coverage_curve run.trace in
            (* the final value is exactly kf *)
            let final = List.nth curve (List.length curve - 1) in
            Alcotest.(check int) "final kf" (p.Params.k * p.Params.f) final;
            let rendered = Timeline.render run.trace in
            Alcotest.(check bool) "has chart" true
              (Astring_contains.contains rendered "|Cov(t)|"));
    test "empty trace renders gracefully" (fun () ->
        let tr = Regemu_sim.Trace.create () in
        Alcotest.(check string) "empty" "(empty trace)" (Timeline.render tr));
  ]

(* --- Sweep ----------------------------------------------------------------- *)

let sweep_tests =
  [
    test "sweep produces three algorithms per grid point" (fun () ->
        let grid = [ Params.make_exn ~k:2 ~f:1 ~n:4 ] in
        let points = Sweep.run ~grid ~seeds:2 () in
        Alcotest.(check int) "points" 3 (List.length points);
        List.iter
          (fun (pt : Sweep.point) ->
            Alcotest.(check bool) "safe" true pt.all_safe;
            Alcotest.(check int) "seeds" 2 pt.seeds;
            Alcotest.(check bool)
              "used within bounds" true
              (pt.objects_used_mean <= float_of_int pt.upper_bound +. 0.01))
          points);
    test "adversarial coverage recorded only for the register algorithm"
      (fun () ->
        let grid = [ Params.make_exn ~k:2 ~f:1 ~n:4 ] in
        let points = Sweep.run ~grid ~seeds:1 () in
        List.iter
          (fun (pt : Sweep.point) ->
            if pt.algo = "algorithm2" then
              Alcotest.(check bool)
                "cov >= kf" true
                (pt.adversarial_cov_mean >= 2.0)
            else
              Alcotest.(check bool)
                "nan" true
                (Float.is_nan pt.adversarial_cov_mean))
          points);
    test "CSV has a header and one line per point" (fun () ->
        let grid = [ Params.make_exn ~k:1 ~f:1 ~n:3 ] in
        let points = Sweep.run ~grid ~seeds:1 () in
        let csv = Sweep.to_csv points in
        let lines =
          List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
        in
        Alcotest.(check int) "lines" (List.length points + 1) (List.length lines);
        Alcotest.(check bool) "header" true
          (Astring_contains.contains (List.hd lines) "objects_used_mean"));
  ]

(* --- Verify ----------------------------------------------------------------- *)

let extra_experiment_tests =
  [
    test "reader_space grows per reader for registers, constant for maxregs"
      (fun () ->
        let r = Theorems.reader_space ~k:2 ~f:1 ~n:4 ~readers_list:[ 0; 2; 5 ] in
        let col i row = int_of_string (List.nth row i) in
        let regs = List.map (col 1) r.rows in
        let maxes = List.map (col 2) r.rows in
        (match regs with
        | [ a; b; c ] ->
            Alcotest.(check bool) "strictly increasing" true (a < b && b < c)
        | _ -> Alcotest.fail "expected three rows");
        Alcotest.(check (list int)) "constant 3" [ 3; 3; 3 ] maxes);
    test "classification rows cover the three base object types" (fun () ->
        let r = Theorems.classification ~k:4 ~f:1 ~n:5 in
        Alcotest.(check (list string))
          "types"
          [ "read/write register"; "max-register"; "CAS" ]
          (List.map List.hd r.rows);
        (* max-register and CAS cost the same despite the consensus gap *)
        let cost row = List.nth row 2 in
        Alcotest.(check string)
          "same cost"
          (cost (List.nth r.rows 1))
          (cost (List.nth r.rows 2)));
    test "maxreg_comparison: tree pays log-steps, CAS pays per-op" (fun () ->
        let r = Theorems.maxreg_comparison ~k:3 ~capacity:32 ~ops:4 ~seed:1 in
        Alcotest.(check int) "three rows" 3 (List.length r.rows);
        let objects row = int_of_string (List.nth row 1) in
        Alcotest.(check int) "flat k" 3 (objects (List.nth r.rows 0));
        Alcotest.(check int) "cas 1" 1 (objects (List.nth r.rows 1));
        Alcotest.(check int) "tree cap-1" 31 (objects (List.nth r.rows 2)));
  ]

let verify_tests =
  [
    test "all self-checks pass" (fun () ->
        let s = Verify.run ~seed:42 in
        if s.failed > 0 then
          Alcotest.failf "failures:@.%a" Verify.summary_pp s);
    test "summary counts are consistent" (fun () ->
        let s = Verify.run ~seed:7 in
        Alcotest.(check int)
          "total" (List.length s.checks)
          (s.passed + s.failed));
  ]


let load_balance_tests =
  [
    test "load is spread within 2x of the even share" (fun () ->
        let r =
          Theorems.load_balance ~k:4 ~f:1 ~n:6 ~rounds:2 ~seed:3
        in
        Alcotest.(check int) "one row per server" 6 (List.length r.rows);
        List.iter
          (fun row ->
            let ratio = float_of_string (List.nth row 2) in
            if ratio > 2.0 then
              Alcotest.failf "server %s overloaded: %.2fx" (List.hd row) ratio)
          r.rows);
  ]


let wire_tests =
  [
    test "abd message cost grows linearly with f" (fun () ->
        let r = Wire.abd_messages ~fs:[ 1; 2; 3 ] ~ops:6 ~seed:1 in
        let per_op row = float_of_string (List.nth row 4) in
        (match r.rows with
        | [ a; b; c ] ->
            Alcotest.(check bool) "monotone" true
              (per_op a < per_op b && per_op b < per_op c)
        | _ -> Alcotest.fail "expected three rows"));
    test "wire alg2 cell counts equal the upper bound" (fun () ->
        let r = Wire.alg2_messages ~configs:[ (2, 1, 4); (3, 2, 7) ] ~seed:1 in
        List.iter
          (fun row ->
            let k = int_of_string (List.nth row 0) in
            let f = int_of_string (List.nth row 1) in
            let n = int_of_string (List.nth row 2) in
            let cells = int_of_string (List.nth row 3) in
            Alcotest.(check int) "cells"
              (Regemu_bounds.Formulas.register_upper_bound
                 (Params.make_exn ~k ~f ~n))
              cells)
          r.rows);
    test "wire staircase rows show i*f coverage and clean F" (fun () ->
        match Wire.staircase ~k:3 ~f:1 ~n:4 ~seed:9 with
        | Error e -> Alcotest.failf "failed: %s" e
        | Ok r ->
            List.iteri
              (fun i row ->
                Alcotest.(check string)
                  "covered = i*f"
                  (string_of_int (i + 1))
                  (List.nth row 1);
                Alcotest.(check string) "on F" "0" (List.nth row 3))
              r.rows);
  ]

let suites =
  [
    ("harness:report", report_tests);
    ("harness:table1", table1_tests);
    ("harness:figures", figures_tests);
    ("harness:theorems", theorem_tests);
    ("harness:timeline", timeline_tests);
    ("harness:sweep", sweep_tests);
    ("harness:extra-experiments", extra_experiment_tests);
    ("harness:load-balance", load_balance_tests);
    ("harness:wire", wire_tests);
    ("harness:verify", verify_tests);
  ]

(* Precision tests for the smaller public surfaces: policies, driver
   outcomes, emulation helpers, pretty-printers, and edge cases not
   covered by the end-to-end suites. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim

let test name f = Alcotest.test_case name `Quick f
let s0 = Id.Server.of_int 0

let with_pending_sim () =
  let sim = Sim.create ~n:2 () in
  let b = Sim.alloc sim ~server:s0 Base_object.Register in
  let c = Sim.new_client sim in
  let l1 =
    Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 1))
      ~on_response:ignore
  in
  let l2 =
    Sim.trigger sim ~client:c b Base_object.Read ~on_response:ignore
  in
  (sim, b, c, l1, l2)

(* --- policies ----------------------------------------------------------- *)

let policy_tests =
  [
    test "responds_first picks the oldest response" (fun () ->
        let sim, _, _, l1, _ = with_pending_sim () in
        match Policy.responds_first.choose sim (Sim.enabled sim) with
        | Some (Sim.Respond l) ->
            Alcotest.(check int) "oldest" (Id.Lop.to_int l1) (Id.Lop.to_int l)
        | _ -> Alcotest.fail "expected a response");
    test "steps_first falls back to responses when no step enabled" (fun () ->
        let sim, _, _, _, _ = with_pending_sim () in
        match Policy.steps_first.choose sim (Sim.enabled sim) with
        | Some (Sim.Respond _) -> ()
        | _ -> Alcotest.fail "expected a response fallback");
    test "biased with bias 1.0 always picks responses" (fun () ->
        let sim, _, _, _, _ = with_pending_sim () in
        let p = Policy.biased (Rng.create 1) ~respond_bias:1.0 in
        for _ = 1 to 10 do
          match p.choose sim (Sim.enabled sim) with
          | Some (Sim.Respond _) -> ()
          | _ -> Alcotest.fail "expected a response"
        done);
    test "filtered blocks everything => None" (fun () ->
        let sim, _, _, _, _ = with_pending_sim () in
        let p =
          Policy.filtered ~name:"none"
            ~keep:(fun _ _ -> false)
            Policy.responds_first
        in
        Alcotest.(check bool)
          "none" true
          (p.choose sim (Sim.enabled sim) = None));
    test "filtered keeps only matching events" (fun () ->
        let sim, _, _, _, l2 = with_pending_sim () in
        let p =
          Policy.filtered ~name:"reads-only"
            ~keep:(fun _ ev ->
              match ev with
              | Sim.Respond l -> Id.Lop.equal l l2
              | Sim.Step _ -> false)
            Policy.responds_first
        in
        match p.choose sim (Sim.enabled sim) with
        | Some (Sim.Respond l) ->
            Alcotest.(check int) "the read" (Id.Lop.to_int l2) (Id.Lop.to_int l)
        | _ -> Alcotest.fail "expected the read");
    test "uniform policy is deterministic per seed" (fun () ->
        let run () =
          let sim, _, _, _, _ = with_pending_sim () in
          let p = Policy.uniform (Rng.create 5) in
          let choices = ref [] in
          for _ = 1 to 2 do
            match p.choose sim (Sim.enabled sim) with
            | Some ev ->
                choices := Fmt.str "%a" Sim.event_pp ev :: !choices;
                Sim.fire sim ev
            | None -> ()
          done;
          !choices
        in
        Alcotest.(check (list string)) "same" (run ()) (run ()));
  ]

(* --- driver --------------------------------------------------------------- *)

let driver_tests =
  [
    test "run_until returns Satisfied when goal already true" (fun () ->
        let sim = Sim.create ~n:1 () in
        Alcotest.(check bool)
          "satisfied" true
          (Driver.outcome_equal
             (Driver.run_until sim Policy.responds_first ~budget:0 (fun () ->
                  true))
             Driver.Satisfied));
    test "run_until reports Budget_exhausted" (fun () ->
        let sim, _, _, _, _ = with_pending_sim () in
        Alcotest.(check bool)
          "budget" true
          (Driver.outcome_equal
             (Driver.run_until sim Policy.responds_first ~budget:1 (fun () ->
                  false))
             Driver.Budget_exhausted));
    test "run_until reports Stuck when nothing enabled" (fun () ->
        let sim = Sim.create ~n:1 () in
        Alcotest.(check bool)
          "stuck" true
          (Driver.outcome_equal
             (Driver.run_until sim Policy.responds_first ~budget:10 (fun () ->
                  false))
             Driver.Stuck));
    test "quiesce drains all pending events" (fun () ->
        let sim, _, _, _, _ = with_pending_sim () in
        ignore (Driver.quiesce sim Policy.responds_first ~budget:10);
        Alcotest.(check int) "no pending" 0 (List.length (Sim.pending sim)));
    test "finish_call_exn error message names the operation" (fun () ->
        let sim = Sim.create ~n:1 () in
        let c = Sim.new_client sim in
        let call =
          Sim.invoke sim ~client:c Trace.H_read (fun () ->
              Sim.wait_until (fun () -> false);
              Value.Unit)
        in
        match
          Driver.finish_call_exn sim Policy.responds_first ~budget:5 call
        with
        | exception Failure msg ->
            Alcotest.(check bool)
              "mentions read" true
              (Astring_contains.contains msg "read")
        | _ -> Alcotest.fail "expected Failure");
  ]

(* --- emulation helpers ----------------------------------------------------- *)

let emulation_helper_tests =
  [
    test "writer_slot finds positions and rejects strangers" (fun () ->
        let cs = List.map Id.Client.of_int [ 4; 7; 9 ] in
        Alcotest.(check int)
          "slot" 1
          (Regemu_core.Emulation.writer_slot cs (Id.Client.of_int 7));
        Alcotest.(check bool)
          "raises" true
          (try
             ignore
               (Regemu_core.Emulation.writer_slot cs (Id.Client.of_int 5));
             false
           with Invalid_argument _ -> true));
    test "call_sync round-trips a value" (fun () ->
        let sim = Sim.create ~n:1 () in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        let call =
          Sim.invoke sim ~client:c Trace.H_read (fun () ->
              ignore
                (Regemu_core.Emulation.call_sync sim ~client:c b
                   (Base_object.Write (Value.Int 7)));
              Regemu_core.Emulation.call_sync sim ~client:c b Base_object.Read)
        in
        let v =
          Driver.finish_call_exn sim Policy.responds_first ~budget:20 call
        in
        Alcotest.(check bool) "7" true (Value.equal v (Value.Int 7)));
    test "collect over empty servers completes vacuously" (fun () ->
        let sim = Sim.create ~n:3 () in
        let c = Sim.new_client sim in
        let call =
          Sim.invoke sim ~client:c Trace.H_read (fun () ->
              Regemu_core.Emulation.collect sim ~client:c
                ~objects_on:(fun _ -> [])
                ~n:3 ~f:1)
        in
        (* all scans vacuous: the fiber still needs one step *)
        let v =
          Driver.finish_call_exn sim Policy.responds_first ~budget:5 call
        in
        Alcotest.(check bool) "v0" true (Value.equal v Value.v0));
  ]

(* --- pretty-printers -------------------------------------------------------- *)

let pp_tests =
  [
    test "value pp shapes" (fun () ->
        Alcotest.(check string) "v0" "v0" (Value.to_string Value.v0);
        Alcotest.(check string) "int" "3" (Value.to_string (Value.Int 3));
        Alcotest.(check string)
          "pair" "<1,\"x\">"
          (Value.to_string (Value.with_ts 1 (Value.Str "x"))));
    test "event pp" (fun () ->
        Alcotest.(check string)
          "step" "step(c3)"
          (Fmt.str "%a" Sim.event_pp (Sim.Step (Id.Client.of_int 3)));
        Alcotest.(check string)
          "respond" "respond(op9)"
          (Fmt.str "%a" Sim.event_pp (Sim.Respond (Id.Lop.of_int 9))));
    test "hop pp" (fun () ->
        Alcotest.(check string)
          "write" "write(7)"
          (Fmt.str "%a" Trace.hop_pp (Trace.H_write (Value.Int 7)));
        Alcotest.(check string) "read" "read()" (Fmt.str "%a" Trace.hop_pp Trace.H_read));
    test "base object op pp" (fun () ->
        Alcotest.(check string)
          "cas" "CAS(1,2)"
          (Fmt.str "%a" Base_object.op_pp
             (Base_object.Compare_and_swap
                { expected = Value.Int 1; desired = Value.Int 2 })));
    test "params pp" (fun () ->
        Alcotest.(check string)
          "triple" "(k=1, f=2, n=5)"
          (Fmt.str "%a" Params.pp (Params.make_exn ~k:1 ~f:2 ~n:5)));
  ]

(* --- epoch state robustness --------------------------------------------------- *)

let epoch_tests =
  [
    test "advance is idempotent" (fun () ->
        let sim = Sim.create ~n:3 () in
        let b = Sim.alloc sim ~server:s0 Base_object.Register in
        let c = Sim.new_client sim in
        let f_set =
          Id.Server.set_of_list [ Id.Server.of_int 1; Id.Server.of_int 2 ]
        in
        let st =
          Regemu_adversary.Epoch_state.start sim ~f_set
            ~completed_clients:Id.Client.Set.empty
        in
        ignore
          (Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 1))
             ~on_response:ignore);
        Regemu_adversary.Epoch_state.advance st;
        let covi1 = Regemu_adversary.Epoch_state.covi st in
        Regemu_adversary.Epoch_state.advance st;
        Regemu_adversary.Epoch_state.advance st;
        Alcotest.(check bool)
          "unchanged" true
          (Id.Obj.Set.equal covi1 (Regemu_adversary.Epoch_state.covi st)));
    test "mi and gi relate per Definition 1.6-1.7" (fun () ->
        let sim = Sim.create ~n:3 () in
        let b1 = Sim.alloc sim ~server:(Id.Server.of_int 1) Base_object.Register in
        let c = Sim.new_client sim in
        let f_set =
          Id.Server.set_of_list [ Id.Server.of_int 1; Id.Server.of_int 2 ]
        in
        let st =
          Regemu_adversary.Epoch_state.start sim ~f_set
            ~completed_clients:Id.Client.Set.empty
        in
        (* cover a register on an F server: it lands in Mi (F \ Fi) *)
        ignore
          (Sim.trigger sim ~client:c b1 (Base_object.Write (Value.Int 1))
             ~on_response:ignore);
        Regemu_adversary.Epoch_state.advance st;
        Alcotest.(check int)
          "mi has s1" 1
          (Id.Server.Set.cardinal (Regemu_adversary.Epoch_state.mi st));
        (* |Qi| = 0 = |Fi| so Gi must be empty *)
        Alcotest.(check int)
          "gi empty" 0
          (Id.Server.Set.cardinal (Regemu_adversary.Epoch_state.gi st)));
  ]

(* --- fuzz sequential scenario --------------------------------------------------- *)

let fuzz_seq_tests =
  [
    test "fuzz sequential counts runs and stays clean for abd-max" (fun () ->
        let p = Params.make_exn ~k:2 ~f:1 ~n:3 in
        let o =
          Regemu_workload.Fuzz.run Regemu_baselines.Abd_max.factory p
            ~scenario:Regemu_workload.Fuzz.Sequential ~runs:10 ~seed:3 ()
        in
        Alcotest.(check int) "runs" 10 o.runs;
        Alcotest.(check int) "clean" 0
          (o.ws_safe_violations + o.ws_regular_violations + o.liveness_failures));
  ]

let suites =
  [
    ("misc:policies", policy_tests);
    ("misc:driver", driver_tests);
    ("misc:emulation-helpers", emulation_helper_tests);
    ("misc:pp", pp_tests);
    ("misc:epoch", epoch_tests);
    ("misc:fuzz-seq", fuzz_seq_tests);
  ]

(* Tests for the CDS multi-writer data store (Cds_live,
   arXiv:1508.03762): the wire codec of its message shapes, the
   per-writer slot semantics in the protocol core, quorum rounds and
   multi-writer ordering on a tiny live cluster, resident-space
   accounting, the chaos arms (including the seeded amnesia violation
   the checker must catch), DST determinism, and the regemu-compare/1
   document validator. *)

open Regemu_objects
open Regemu_live
module Proto = Regemu_netsim.Proto
module Json = Regemu_obs.Json

let test name f = Alcotest.test_case name `Quick f
let value = Alcotest.testable Value.pp Value.equal

(* --- codec --------------------------------------------------------------- *)

let cds_payloads =
  let v = Value.Pair (Value.Int 2049, Value.Str "w1") in
  [
    Proto.Cquery { rid = 0 };
    Proto.Cquery { rid = max_int };
    Proto.Cquery_reply { rid = 1; slots = [] };
    Proto.Cquery_reply { rid = 2; slots = [ (0, v) ] };
    Proto.Cquery_reply
      { rid = 3; slots = [ (0, Value.Unit); (1, v); (5, Value.Str "") ] };
    Proto.Cwrite { rid = 4; slot = 0; proposed = v };
    Proto.Cwrite { rid = 5; slot = 1023; proposed = Value.Unit };
    Proto.Cwrite_reply { rid = 6; slot = 7 };
  ]

let env payload =
  Codec.Env { Transport_intf.src = 3; dest = Transport_intf.To_client 2; payload }

let codec_tests =
  [
    test "CDS payloads round-trip byte-identically" (fun () ->
        List.iter
          (fun p ->
            let m = env p in
            let s = Codec.encode m in
            let m' = Codec.decode s in
            Alcotest.(check bool) "decode inverts encode" true (m = m');
            Alcotest.(check string) "re-encode is byte-identical" s
              (Codec.encode m'))
          cds_payloads);
    test "truncated Cquery_reply is rejected at every cut point" (fun () ->
        let s =
          Codec.encode
            (env
               (Proto.Cquery_reply
                  {
                    rid = 9;
                    slots =
                      [ (0, Value.Pair (Value.Int 1024, Value.Str "a"));
                        (1, Value.Pair (Value.Int 2049, Value.Str "b")) ];
                  }))
        in
        for cut = 0 to String.length s - 1 do
          match Codec.decode (String.sub s 0 cut) with
          | exception Codec.Malformed _ -> ()
          | _ ->
              Alcotest.failf "truncation to %d bytes decoded as a message" cut
        done);
    test "trailing bytes after a Cwrite are rejected" (fun () ->
        let s =
          Codec.encode
            (env (Proto.Cwrite { rid = 1; slot = 0; proposed = Value.Unit }))
        in
        match Codec.decode (s ^ "\x00") with
        | exception Codec.Malformed _ -> ()
        | _ -> Alcotest.fail "trailing byte accepted");
  ]

(* --- the protocol core's slot store -------------------------------------- *)

let ts v = Value.Pair (Value.Int v, Value.Str "x")

let store_tests =
  [
    test "Cwrite is per-slot write-max, allocated on first touch" (fun () ->
        let st = Proto.store_create () in
        Alcotest.(check int) "no slots initially" 0 (Proto.num_slots st);
        ignore (Proto.step st (Proto.Cwrite { rid = 0; slot = 0; proposed = ts 5 }));
        ignore (Proto.step st (Proto.Cwrite { rid = 1; slot = 0; proposed = ts 3 }));
        Alcotest.check value "stale write lost the max" (ts 5)
          (Proto.peek_slot st 0);
        ignore (Proto.step st (Proto.Cwrite { rid = 2; slot = 3; proposed = ts 1 }));
        Alcotest.(check int) "two resident slots" 2 (Proto.num_slots st);
        Alcotest.check value "slots are independent" (ts 1)
          (Proto.peek_slot st 3);
        Alcotest.check value "untouched slot reads v0" Value.v0
          (Proto.peek_slot st 9));
    test "Cquery collects every resident slot, sorted" (fun () ->
        let st = Proto.store_create () in
        ignore (Proto.step st (Proto.Cwrite { rid = 0; slot = 2; proposed = ts 7 }));
        ignore (Proto.step st (Proto.Cwrite { rid = 1; slot = 0; proposed = ts 4 }));
        match Proto.step st (Proto.Cquery { rid = 5 }) with
        | [ Proto.Cquery_reply { rid = 5; slots } ] ->
            Alcotest.(check bool) "sorted (slot, value) pairs" true
              (slots = [ (0, ts 4); (2, ts 7) ])
        | _ -> Alcotest.fail "expected exactly one Cquery_reply");
    test "resident cells and bytes count the slot store" (fun () ->
        let st = Proto.store_create () in
        Alcotest.(check int) "fresh store holds nothing" 0
          (Proto.resident_cells st);
        ignore
          (Proto.step st
             (Proto.Cwrite { rid = 0; slot = 0; proposed = Value.Str "abc" }));
        Alcotest.(check int) "one resident cell" 1 (Proto.resident_cells st);
        Alcotest.(check int) "canonical encoding size" (5 + 3)
          (Proto.resident_bytes st);
        Alcotest.(check int) "value_bytes: pair of int and str"
          (1 + 9 + (5 + 1))
          (Proto.value_bytes (Value.Pair (Value.Int 3, Value.Str "y"))));
    test "reset wipes the slot store" (fun () ->
        let st = Proto.store_create () in
        ignore (Proto.step st (Proto.Cwrite { rid = 0; slot = 1; proposed = ts 9 }));
        Proto.reset st;
        Alcotest.(check int) "no slots after reset" 0 (Proto.num_slots st);
        Alcotest.check value "slot reads v0 after reset" Value.v0
          (Proto.peek_slot st 1));
  ]

(* --- quorum rounds on a tiny live cluster -------------------------------- *)

let mk_cluster ?(n = 3) ~seed () =
  Cluster.create
    {
      (Cluster.default_config ~n ~seed) with
      Cluster.retry =
        Some { Retry.base_s = 0.02; cap_s = 0.15; deadline_s = 8.0; grace_s = 0.1 };
    }

let live_tests =
  [
    test "create validates the replica and writer bounds" (fun () ->
        let cluster = mk_cluster ~seed:11 () in
        let w = Cluster.new_client cluster in
        (match Cds_live.create cluster ~f:2 ~writers:[ w ] () with
        | _ -> Alcotest.fail "f=2 on 3 servers accepted"
        | exception Invalid_argument _ -> ());
        let cds = Cds_live.create cluster ~f:1 ~writers:[ w ] () in
        Alcotest.(check int) "quorum system spans 2f+1" 3
          (Cds_live.replicas cds);
        Alcotest.(check int) "one slot per writer" 1
          (Cds_live.writer_slots cds);
        let stranger = Cluster.new_client cluster in
        (match Cds_live.write cds stranger Value.Unit with
        | () -> Alcotest.fail "unregistered writer accepted"
        | exception Invalid_argument _ -> ());
        Cluster.shutdown cluster);
    test "two writers interleave with lexicographic (seq, slot) order"
      (fun () ->
        let cluster = mk_cluster ~seed:12 () in
        let w0 = Cluster.new_client cluster in
        let w1 = Cluster.new_client cluster in
        let r = Cluster.new_client cluster in
        let cds = Cds_live.create cluster ~f:1 ~writers:[ w0; w1 ] () in
        Cluster.start cluster;
        let checker = Checker.spawn cluster () in
        Alcotest.check value "empty register reads v0" Value.v0
          (Cds_live.read cds r);
        Cds_live.write cds w0 (Value.Str "a");
        Alcotest.check value "w0's write visible" (Value.Str "a")
          (Cds_live.read cds r);
        Cds_live.write cds w1 (Value.Str "b");
        Alcotest.check value "w1 collected w0's seq and went past it"
          (Value.Str "b") (Cds_live.read cds r);
        Cds_live.write cds w0 (Value.Str "c");
        Alcotest.check value "w0 wins back with a higher seq" (Value.Str "c")
          (Cds_live.read cds r);
        let check = Checker.stop checker in
        Alcotest.(check bool) "online checker stayed quiet" true
          (Checker.ok check);
        (* every replica now holds exactly one cell per writer *)
        let cells_max, _, cells_total = Cluster.resident_space cluster in
        Alcotest.(check int) "k cells per server" 2 cells_max;
        Alcotest.(check int) "k(2f+1) cells total" 6 cells_total;
        Cluster.shutdown cluster);
    test "a write survives f crashed servers" (fun () ->
        let cluster = mk_cluster ~seed:13 () in
        let w = Cluster.new_client cluster in
        let r = Cluster.new_client cluster in
        let cds = Cds_live.create cluster ~f:1 ~writers:[ w ] () in
        Cluster.start cluster;
        Cds_live.write cds w (Value.Str "durable");
        Cluster.crash cluster 0;
        Alcotest.check value "read completes on the surviving quorum"
          (Value.Str "durable") (Cds_live.read cds r);
        Cds_live.write cds w (Value.Str "still-writable");
        Alcotest.check value "write completes on the surviving quorum"
          (Value.Str "still-writable") (Cds_live.read cds r);
        Cluster.shutdown cluster);
  ]

(* --- chaos arms ----------------------------------------------------------- *)

let scenario ~seed name =
  match Regemu_chaos.Campaign.by_name ~seed name with
  | Some s -> s
  | None -> Alcotest.failf "scenario %s missing from the campaign" name

let chaos_tests =
  [
    test "rolling-crashes-cds passes the campaign judgment" (fun () ->
        let o = Regemu_chaos.Campaign.run (scenario ~seed:31 "rolling-crashes-cds") in
        Alcotest.(check bool)
          (Fmt.str "pass (failure: %s)"
             (Option.value ~default:"none" o.Regemu_chaos.Campaign.failure))
          true o.Regemu_chaos.Campaign.pass);
    test "amnesia-cds: the checker catches the seeded violation" (fun () ->
        let o = Regemu_chaos.Campaign.run (scenario ~seed:32 "amnesia-cds") in
        Alcotest.(check bool) "scenario passes (violation expected)" true
          o.Regemu_chaos.Campaign.pass;
        Alcotest.(check bool) "the WS checker actually flagged it" false
          (Checker.ok o.Regemu_chaos.Campaign.check));
  ]

(* --- DST determinism ------------------------------------------------------ *)

let dst_tests =
  [
    test "same config twice: byte-identical run digests" (fun () ->
        let cfg =
          {
            (Regemu_dst.Dst.default_config ~seed:41) with
            Regemu_dst.Dst.algo = Live_bench.Cds;
            writers = 2;
          }
        in
        let o1 = Regemu_dst.Dst.run cfg and o2 = Regemu_dst.Dst.run cfg in
        Alcotest.(check string) "digest"
          (Regemu_dst.Dst.run_digest o1)
          (Regemu_dst.Dst.run_digest o2);
        Alcotest.(check bool) "clean" true (Regemu_dst.Dst.passed o1));
    test "different seeds diverge" (fun () ->
        let cfg seed =
          {
            (Regemu_dst.Dst.default_config ~seed) with
            Regemu_dst.Dst.algo = Live_bench.Cds;
          }
        in
        Alcotest.(check bool) "digests differ" true
          (Regemu_dst.Dst.run_digest (Regemu_dst.Dst.run (cfg 42))
          <> Regemu_dst.Dst.run_digest (Regemu_dst.Dst.run (cfg 43))));
  ]

(* --- the regemu-compare/1 validator --------------------------------------- *)

let row ?(algo = "abd") ?(backend = "threads") ?(load = "k2-f1") () =
  Json.Obj
    [
      ("algo", Json.Str algo);
      ("backend", Json.Str backend);
      ("load", Json.Str load);
      ("f", Json.Int 1);
      ("n", Json.Int 5);
      ("ops_per_s", Json.Float 1000.0);
      ("latency_p50_us", Json.Float 10.0);
      ("latency_p95_us", Json.Float 20.0);
      ("space_resident_cells", Json.Int 1);
      ("space_resident_bytes", Json.Int 22);
      ("space_cells_total", Json.Int 3);
      ("space_formula_cells_total", Json.Int 3);
      ("clean", Json.Bool true);
    ]

let doc rows =
  Json.Obj
    [
      ("schema", Json.Str "regemu-compare/1");
      ("seed", Json.Int 42);
      ("smoke", Json.Bool true);
      ("rows", Json.List rows);
      ("clean", Json.Bool true);
    ]

let full_coverage =
  List.concat_map
    (fun algo ->
      List.map (fun backend -> row ~algo ~backend ()) [ "threads"; "domains" ])
    [ "abd"; "algorithm2"; "cds" ]

let expect_invalid what = function
  | Ok () -> Alcotest.failf "%s: expected a validation error" what
  | Error _ -> ()

let compare_tests =
  [
    test "formula column matches the paper-side bounds" (fun () ->
        let l = { Compare_bench.label = "x"; k = 6; readers = 1; f = 2; n = 7 } in
        Alcotest.(check int) "ABD: 2f+1" 5
          (Compare_bench.formula_cells_total ~algo:Live_bench.Abd l);
        Alcotest.(check int) "CDS: k(2f+1)" 30
          (Compare_bench.formula_cells_total ~algo:Live_bench.Cds l);
        Alcotest.(check int) "Alg2: the register_upper_bound formula"
          (Regemu_bounds.Formulas.register_upper_bound
             (Regemu_bounds.Params.make_exn ~k:6 ~f:2 ~n:7))
          (Compare_bench.formula_cells_total ~algo:Live_bench.Alg2 l));
    test "a fully covered document validates" (fun () ->
        match Compare_bench.validate_compare_json (doc full_coverage) with
        | Ok () -> ()
        | Error m -> Alcotest.failf "valid document rejected: %s" m);
    test "holes, duplicates, and junk are rejected" (fun () ->
        expect_invalid "empty rows" (Compare_bench.validate_compare_json (doc []));
        expect_invalid "missing (cds, domains) cell"
          (Compare_bench.validate_compare_json
             (doc (List.filteri (fun i _ -> i < 5) full_coverage)));
        expect_invalid "duplicated cell"
          (Compare_bench.validate_compare_json
             (doc (row () :: full_coverage)));
        expect_invalid "unknown algo"
          (Compare_bench.validate_compare_json (doc [ row ~algo:"paxos" () ]));
        expect_invalid "socket backend is not part of the comparison"
          (Compare_bench.validate_compare_json
             (doc (row ~backend:"socket" () :: full_coverage)));
        expect_invalid "wrong schema"
          (Compare_bench.validate_compare_json
             (Json.Obj [ ("schema", Json.Str "regemu-compare/2") ])));
  ]

let suites =
  [
    ("cds codec", codec_tests);
    ("cds slot store", store_tests);
    ("cds live", live_tests);
    ("cds chaos", chaos_tests);
    ("cds dst", dst_tests);
    ("cds compare", compare_tests);
  ]

(* Tests for the fuzzer and the latency experiment. *)

open Regemu_bounds
open Regemu_workload
open Regemu_harness

let test name f = Alcotest.test_case name `Quick f
let p = Params.make_exn ~k:2 ~f:1 ~n:4

let fuzz_tests =
  [
    test "algorithm2 is clean across all scenarios" (fun () ->
        List.iter
          (fun scenario ->
            let o =
              Fuzz.run Regemu_core.Algorithm2.factory p ~scenario ~runs:15
                ~seed:100 ()
            in
            Alcotest.(check int) "runs" 15 o.runs;
            Alcotest.(check int) "safe" 0 o.ws_safe_violations;
            Alcotest.(check int) "regular" 0 o.ws_regular_violations;
            Alcotest.(check int) "liveness" 0 o.liveness_failures;
            Alcotest.(check (option int)) "no bad seed" None o.first_bad_seed)
          [ Fuzz.Sequential; Fuzz.Concurrent_reads; Fuzz.Chaos ]);
    test "abd-max is clean under chaos" (fun () ->
        let o =
          Fuzz.run Regemu_baselines.Abd_max.factory p ~scenario:Fuzz.Chaos
            ~runs:15 ~seed:7 ()
        in
        Alcotest.(check int) "safe" 0 o.ws_safe_violations;
        Alcotest.(check int) "liveness" 0 o.liveness_failures);
    test "wait-all shows liveness failures once a server crashes" (fun () ->
        (* the Concurrent_reads scenario crashes [seed mod (f+1)] servers;
           with enough runs some run crashes one, and wait-all then hangs *)
        let o =
          Fuzz.run Regemu_baselines.Waitall_reg.factory p
            ~scenario:Fuzz.Concurrent_reads ~runs:20 ~seed:0 ()
        in
        Alcotest.(check bool)
          "some liveness failure" true (o.liveness_failures > 0);
        Alcotest.(check bool) "bad seed reported" true (o.first_bad_seed <> None));
    test "random fuzzing misses what the scripted adversary catches"
      (fun () ->
        (* documents the asymmetry: naive-reg is broken (Violation
           proves it) yet uniform random schedules do not find it *)
        let o =
          Fuzz.run Regemu_baselines.Naive_reg.factory
            (Params.make_exn ~k:2 ~f:1 ~n:3)
            ~scenario:Fuzz.Concurrent_reads ~runs:25 ~seed:3 ()
        in
        Alcotest.(check int) "no violation found" 0
          (o.ws_safe_violations + o.ws_regular_violations);
        match Regemu_adversary.Violation.against_naive ~f:1 with
        | Ok { verdict = Regemu_history.Ws_check.Violated _; _ } -> ()
        | _ -> Alcotest.fail "the scripted adversary must catch it");
    test "the procrastinating policy DOES catch the naive algorithm"
      (fun () ->
        (* holding ~40% of responses for 15 steps recreates the
           release-a-stale-covering-write pattern often enough that a
           modest fuzzing budget finds the Figure 2 violation *)
        let o =
          Fuzz.run Regemu_baselines.Naive_reg.factory
            (Params.make_exn ~k:2 ~f:1 ~n:3)
            ~policy:(fun rng ->
              Regemu_sim.Policy.procrastinating rng ~hold_percent:40
                ~hold_steps:15)
            ~scenario:Fuzz.Sequential ~runs:60 ~seed:0 ()
        in
        Alcotest.(check bool)
          "violations found" true (o.ws_safe_violations > 0);
        Alcotest.(check bool) "seed reported" true (o.first_bad_seed <> None));
    test "algorithm2 survives the procrastinator (it survives anything)"
      (fun () ->
        let o =
          Fuzz.run Regemu_core.Algorithm2.factory
            (Params.make_exn ~k:2 ~f:1 ~n:3)
            ~policy:(fun rng ->
              Regemu_sim.Policy.procrastinating rng ~hold_percent:40
                ~hold_steps:15)
            ~scenario:Fuzz.Sequential ~runs:60 ~seed:0 ()
        in
        Alcotest.(check int) "clean" 0
          (o.ws_safe_violations + o.ws_regular_violations
          + o.liveness_failures));
  ]

let latency_tests =
  [
    test "latency rows cover the standard emulations" (fun () ->
        let rows = Latency.compute p ~rounds:1 in
        let names = List.map (fun (r : Latency.row) -> r.algo) rows in
        List.iter
          (fun expected ->
            Alcotest.(check bool) expected true (List.mem expected names))
          [ "abd-max"; "abd-max-atomic"; "abd-cas"; "algorithm2" ]);
    test "layered included exactly when n = 2f+1" (fun () ->
        let has_layered q =
          List.exists
            (fun (r : Latency.row) -> r.algo = "layered-2f+1")
            (Latency.compute q ~rounds:1)
        in
        Alcotest.(check bool) "at 2f+1" true
          (has_layered (Params.make_exn ~k:2 ~f:1 ~n:3));
        Alcotest.(check bool) "above 2f+1" false (has_layered p));
    test "write-back makes atomic reads cost as much as writes" (fun () ->
        let rows = Latency.compute p ~rounds:2 in
        let find name =
          List.find (fun (r : Latency.row) -> r.algo = name) rows
        in
        let plain = find "abd-max" and atomic = find "abd-max-atomic" in
        Alcotest.(check bool)
          "atomic read slower than regular read" true
          (atomic.avg_read > plain.avg_read));
    test "the CAS emulation's writes cost more than native max-registers"
      (fun () ->
        let rows = Latency.compute p ~rounds:2 in
        let find name =
          List.find (fun (r : Latency.row) -> r.algo = name) rows
        in
        Alcotest.(check bool)
          "abd-cas write > abd-max write" true
          ((find "abd-cas").avg_write > (find "abd-max").avg_write));
    test "latencies are deterministic under the round-robin policy" (fun () ->
        let run () =
          List.map
            (fun (r : Latency.row) -> (r.algo, r.avg_write, r.avg_read))
            (Latency.compute p ~rounds:1)
        in
        Alcotest.(check bool) "equal" true (run () = run ()));
  ]

let suites = [ ("fuzz", fuzz_tests); ("latency", latency_tests) ]

(* Ablation tests: remove one design choice at a time and watch the
   corresponding guarantee fall over.  The three ablations bracket
   Algorithm 2's design:
   - colocated placement (here)  -> loses f-tolerance (liveness);
   - no covering discipline (Naive_reg + Violation) -> loses safety;
   - wait-for-all (Waitall_reg) -> loses liveness even without covering.
   The latter two live in suite_impossibility / suite_adversary; this
   file covers the placement choice and cross-checks the healthy
   baseline on identical scenarios. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_core

let test name f = Alcotest.test_case name `Quick f

let setup ~build ~k ~f ~n =
  let p = Params.make_exn ~k ~f ~n in
  let sim = Sim.create ~n () in
  let writers = List.init k (fun _ -> Sim.new_client sim) in
  let instance, layout = Algorithm2.make_with_layout ~build sim p ~writers in
  (p, sim, instance, layout, writers)

let ablation_tests =
  [
    test "colocated layout really colocates" (fun () ->
        let _, sim, _, layout, _ =
          setup ~build:Layout.build_colocated ~k:1 ~f:1 ~n:3
        in
        let servers =
          Array.to_list (Layout.set layout 0)
          |> List.map (Sim.delta sim)
          |> Id.Server.set_of_list
        in
        (* a set of >= 3 registers lands on fewer servers than registers *)
        Alcotest.(check bool)
          "shared server" true
          (Id.Server.Set.cardinal servers
          < Array.length (Layout.set layout 0)));
    test "healthy placement: a write survives any single crash" (fun () ->
        List.iter
          (fun victim ->
            let _, sim, instance, _, writers =
              setup ~build:Layout.build ~k:1 ~f:1 ~n:3
            in
            Sim.crash_server sim (Id.Server.of_int victim);
            let call = instance.write (List.hd writers) (Value.Int 1) in
            match
              Driver.finish_call sim Policy.responds_first ~budget:50_000 call
            with
            | Ok _ -> ()
            | Error o ->
                Alcotest.failf "victim s%d: %a" victim Driver.outcome_pp o)
          [ 0; 1; 2 ]);
    test "colocated placement: one crash can block a write forever"
      (fun () ->
        (* with registers 0 and 1 of the set sharing server 0, crashing
           it removes two registers; the quorum |R|-f is unreachable *)
        let _, sim, instance, layout, writers =
          setup ~build:Layout.build_colocated ~k:1 ~f:1 ~n:3
        in
        let shared = Sim.delta sim (Layout.set layout 0).(0) in
        Sim.crash_server sim shared;
        let call = instance.write (List.hd writers) (Value.Int 1) in
        match
          Driver.finish_call sim Policy.responds_first ~budget:50_000 call
        with
        | Error Driver.Stuck -> ()
        | Ok _ -> Alcotest.fail "ablated layout unexpectedly survived"
        | Error o -> Alcotest.failf "expected Stuck, got %a" Driver.outcome_pp o);
    test "without crashes the ablated layout still works (the flaw is \
          fault-tolerance, not logic)" (fun () ->
        let _, sim, instance, _, writers =
          setup ~build:Layout.build_colocated ~k:2 ~f:1 ~n:3
        in
        let policy = Policy.uniform (Rng.create 3) in
        List.iteri
          (fun i w ->
            ignore
              (Driver.finish_call_exn sim policy ~budget:50_000
                 (instance.write w (Value.Int i))))
          writers;
        let reader = Sim.new_client sim in
        let v =
          Driver.finish_call_exn sim policy ~budget:50_000
            (instance.read reader)
        in
        Alcotest.(check bool) "latest" true (Value.equal v (Value.Int 1)));
  ]

let suites = [ ("ablation:placement", ablation_tests) ]

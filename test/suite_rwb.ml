(* Tests for the reader-write-back variant of Algorithm 2: atomicity
   from plain registers, at a space cost linear in the readers. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_baselines

let test name f = Alcotest.test_case name `Quick f

let setup ~k ~f ~n ~readers =
  let p = Params.make_exn ~k ~f ~n in
  let sim = Sim.create ~n () in
  let writers = List.init k (fun _ -> Sim.new_client sim) in
  let reader_clients = List.init readers (fun _ -> Sim.new_client sim) in
  let t = Algorithm2_rwb.create sim p ~writers ~readers:reader_clients in
  (p, sim, t, writers, reader_clients)

let unit_tests =
  [
    test "space grows linearly with the number of readers" (fun () ->
        let count readers =
          let _, _, t, _, _ = setup ~k:2 ~f:1 ~n:4 ~readers in
          List.length (Algorithm2_rwb.objects t)
        in
        let p = Params.make_exn ~k:2 ~f:1 ~n:4 in
        List.iter
          (fun r ->
            Alcotest.(check int)
              (Fmt.str "%d readers" r)
              (Algorithm2_rwb.expected_objects p ~readers:r)
              (count r))
          [ 1; 2; 4 ];
        (* strictly increasing in r *)
        Alcotest.(check bool) "monotone" true (count 4 > count 1));
    test "reads and writes work sequentially, under a crash" (fun () ->
        let _, sim, t, writers, readers = setup ~k:2 ~f:1 ~n:5 ~readers:2 in
        let policy = Policy.uniform (Rng.create 8) in
        let go call = Driver.finish_call_exn sim policy ~budget:100_000 call in
        ignore (go (Algorithm2_rwb.write t (List.nth writers 0) (Value.Str "a")));
        Sim.crash_server sim (Id.Server.of_int 1);
        ignore (go (Algorithm2_rwb.write t (List.nth writers 1) (Value.Str "b")));
        let v = go (Algorithm2_rwb.read t (List.nth readers 0)) in
        Alcotest.(check bool) "b" true (Value.equal v (Value.Str "b"));
        let v2 = go (Algorithm2_rwb.read t (List.nth readers 1)) in
        Alcotest.(check bool) "b again" true (Value.equal v2 (Value.Str "b")));
    test "unregistered readers are rejected" (fun () ->
        let _, sim, t, _, _ = setup ~k:1 ~f:1 ~n:3 ~readers:1 in
        let stranger = Sim.new_client sim in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (Algorithm2_rwb.read t stranger);
             false
           with Invalid_argument _ -> true));
    test "zero readers rejected" (fun () ->
        let p = Params.make_exn ~k:1 ~f:1 ~n:3 in
        let sim = Sim.create ~n:3 () in
        let w = Sim.new_client sim in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (Algorithm2_rwb.create sim p ~writers:[ w ] ~readers:[]);
             false
           with Invalid_argument _ -> true));
    test "readers keep the covering discipline too" (fun () ->
        let _, sim, t, writers, readers = setup ~k:1 ~f:1 ~n:3 ~readers:2 in
        let policy = Policy.uniform (Rng.create 5) in
        let go call = Driver.finish_call_exn sim policy ~budget:100_000 call in
        ignore (go (Algorithm2_rwb.write t (List.hd writers) (Value.Str "x")));
        List.iter
          (fun r -> ignore (go (Algorithm2_rwb.read t r)))
          (readers @ readers);
        match
          Regemu_history.Invariants.single_pending_write_per_writer_register
            (Sim.trace sim)
        with
        | Ok () -> ()
        | Error v ->
            Alcotest.failf "%a" Regemu_history.Invariants.violation_pp v);
  ]

(* the headline: histories are atomic, not merely WS-Regular *)
let drive_concurrent ~seed =
  let _, sim, t, writers, readers = setup ~k:2 ~f:1 ~n:4 ~readers:2 in
  let rng = Rng.create seed in
  let policy = Policy.uniform (Rng.split rng) in
  let reads = ref [] in
  let maybe_read () =
    if Rng.int rng ~bound:8 = 0 then
      match
        List.filter (fun c -> not (Sim.client_busy sim c)) readers
      with
      | [] -> ()
      | idle -> reads := Algorithm2_rwb.read t (Rng.pick rng idle) :: !reads
  in
  (* sequential writes, concurrent reads *)
  List.iteri
    (fun i w ->
      let call = Algorithm2_rwb.write t w (Value.Int i) in
      let rec drive budget =
        if budget = 0 then Alcotest.fail "write stalled";
        if not (Sim.call_returned call) then begin
          maybe_read ();
          ignore (Driver.step sim policy);
          drive (budget - 1)
        end
      in
      drive 100_000)
    (writers @ writers);
  (match
     Driver.run_until sim policy ~budget:200_000 (fun () ->
         List.for_all Sim.call_returned !reads)
   with
  | Driver.Satisfied -> ()
  | o -> Alcotest.failf "drain: %a" Driver.outcome_pp o);
  Regemu_history.History.of_trace (Sim.trace sim)

let atomicity_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "reader write-back makes Algorithm 2 atomic (sequential writes, \
            concurrent reads)"
         ~count:60
         (QCheck.make QCheck.Gen.(int_range 0 1_000_000) ~print:string_of_int)
         (fun seed ->
           Regemu_history.Regularity.is_atomic (drive_concurrent ~seed)));
  ]

let suites =
  [ ("rwb:unit", unit_tests); ("rwb:atomicity", atomicity_tests) ]

(* Tests for the leaderboard app: max-registers at the application
   layer. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_apps

let test name f = Alcotest.test_case name `Quick f

let setup ~f ~n =
  let p = Params.make_exn ~k:1 ~f ~n in
  let sim = Sim.create ~n () in
  let lb = Leaderboard.create sim p () in
  let policy = Policy.uniform (Rng.create 6) in
  (sim, lb, policy)

let leaderboard_tests =
  [
    test "scores only go up" (fun () ->
        let sim, lb, policy = setup ~f:1 ~n:3 in
        let c = Sim.new_client sim in
        Leaderboard.submit lb ~policy ~client:c "ada" 100;
        Leaderboard.submit lb ~policy ~client:c "ada" 40;
        Alcotest.(check int) "best" 100 (Leaderboard.best lb ~policy ~client:c "ada");
        Leaderboard.submit lb ~policy ~client:c "ada" 250;
        Alcotest.(check int) "new best" 250
          (Leaderboard.best lb ~policy ~client:c "ada"));
    test "unknown players score 0" (fun () ->
        let sim, lb, policy = setup ~f:1 ~n:3 in
        let c = Sim.new_client sim in
        Alcotest.(check int) "zero" 0 (Leaderboard.best lb ~policy ~client:c "ghost"));
    test "standings are sorted and complete" (fun () ->
        let sim, lb, policy = setup ~f:1 ~n:4 in
        let c = Sim.new_client sim in
        Leaderboard.submit lb ~policy ~client:c "ada" 10;
        Leaderboard.submit lb ~policy ~client:c "bob" 30;
        Leaderboard.submit lb ~policy ~client:c "eve" 20;
        Alcotest.(check (list (pair string int)))
          "sorted"
          [ ("bob", 30); ("eve", 20); ("ada", 10) ]
          (Leaderboard.standings lb ~policy ~client:c));
    test "storage is 2f+1 per player, independent of submitters" (fun () ->
        let sim, lb, policy = setup ~f:2 ~n:5 in
        let clients = List.init 4 (fun _ -> Sim.new_client sim) in
        List.iteri
          (fun i c -> Leaderboard.submit lb ~policy ~client:c "ada" (10 * i))
          clients;
        Alcotest.(check int) "per player" 5 (Leaderboard.objects_per_player lb);
        Alcotest.(check int) "total" 5 (Leaderboard.storage_objects lb);
        Leaderboard.submit lb ~policy ~client:(List.hd clients) "bob" 1;
        Alcotest.(check int) "two players" 10 (Leaderboard.storage_objects lb));
    test "survives f crashes" (fun () ->
        let sim, lb, policy = setup ~f:2 ~n:6 in
        let c = Sim.new_client sim in
        Leaderboard.submit lb ~policy ~client:c "ada" 11;
        Sim.crash_server sim (Id.Server.of_int 0);
        Sim.crash_server sim (Id.Server.of_int 2);
        Leaderboard.submit lb ~policy ~client:c "ada" 22;
        Alcotest.(check int) "best" 22 (Leaderboard.best lb ~policy ~client:c "ada"));
    test "negative scores rejected" (fun () ->
        let sim, lb, policy = setup ~f:1 ~n:3 in
        let c = Sim.new_client sim in
        Alcotest.(check bool)
          "raises" true
          (try
             Leaderboard.submit lb ~policy ~client:c "ada" (-1);
             false
           with Invalid_argument _ -> true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"best always equals the maximum submitted (random sequences)"
         ~count:60
         (QCheck.make
            QCheck.Gen.(
              pair (int_range 0 1_000_000)
                (list_size (int_range 1 10) (int_range 0 100)))
            ~print:(fun (s, xs) -> Fmt.str "seed=%d n=%d" s (List.length xs)))
         (fun (seed, scores) ->
           let sim, lb, _ = setup ~f:1 ~n:3 in
           let policy = Policy.uniform (Rng.create seed) in
           let clients = List.init 2 (fun _ -> Sim.new_client sim) in
           List.iteri
             (fun i s ->
               Leaderboard.submit lb ~policy
                 ~client:(List.nth clients (i mod 2))
                 "p" s)
             scores;
           Leaderboard.best lb ~policy ~client:(List.hd clients) "p"
           = List.fold_left Stdlib.max 0 scores));
  ]

let suites = [ ("leaderboard", leaderboard_tests) ]

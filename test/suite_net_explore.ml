(* Systematic exploration of the message-passing substrate. *)

open Regemu_bounds
open Regemu_objects
open Regemu_mcheck
open Regemu_netsim

let test name f = Alcotest.test_case name `Quick f
let p1 = Params.make_exn ~k:1 ~f:1 ~n:3

let net_explore_tests =
  [
    test "exhaustive: ABD on the wire, one write, ALL delivery orders"
      (fun () ->
        let r =
          Net_explore.run
            {
              params = p1;
              protocol = Net_scenario.abd ~write_back:false;
              ops = [ `Write (Value.Str "a") ];
              crashes = 0;
            }
            ~max_fired:5_000_000
        in
        Alcotest.(check bool) "exhaustive" true r.exhaustive;
        Alcotest.(check bool) "big space" true (r.terminal_runs > 100_000);
        Alcotest.(check int) "never stuck" 0 r.stuck_runs;
        Alcotest.(check int) "never unsafe" 0
          (List.length r.ws_safe_violations));
    test "exhaustive: wire-level algorithm2, one write" (fun () ->
        let r =
          Net_explore.run
            {
              params = p1;
              protocol = Net_scenario.alg2;
              ops = [ `Write (Value.Str "a") ];
              crashes = 0;
            }
            ~max_fired:5_000_000
        in
        Alcotest.(check bool) "exhaustive" true r.exhaustive;
        Alcotest.(check int) "never stuck" 0 r.stuck_runs);
    test "write-then-read: no violation in a large covered space" (fun () ->
        (* the full space is beyond a unit-test budget; cover a large
           prefix and require it clean *)
        let r =
          Net_explore.run
            {
              params = p1;
              protocol = Net_scenario.abd ~write_back:false;
              ops = [ `Write (Value.Str "a"); `Read ];
              crashes = 0;
            }
            ~max_fired:1_000_000
        in
        Alcotest.(check bool) "covered some" true (r.terminal_runs > 10_000);
        Alcotest.(check int) "clean" 0 (List.length r.ws_safe_violations));
    test "losing the majority is caught as stuck states" (fun () ->
        let r =
          Net_explore.run
            {
              params = p1;
              protocol = Net_scenario.abd ~write_back:false;
              ops = [ `Write (Value.Str "a") ];
              crashes = 2 (* f+1: beyond tolerance *);
            }
            ~max_fired:3_000_000
        in
        Alcotest.(check bool) "stuck found" true (r.stuck_runs > 0);
        Alcotest.(check int) "but never unsafe" 0
          (List.length r.ws_safe_violations));
  ]

let suites = [ ("net-explore", net_explore_tests) ]

(* Tests for the algorithm-level trace invariants: the covering
   discipline that separates the correct constructions from the
   strawmen. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_history
open Regemu_workload

let test name f = Alcotest.test_case name `Quick f

let trace_of factory p ~seed =
  match
    Scenario.write_sequential factory p ~read_after_each:true ~rounds:2 ~seed
      ()
  with
  | Ok r -> Sim.trace r.sim
  | Error e -> Alcotest.failf "scenario failed: %a" Scenario.error_pp e

let adversarial_trace factory p ~seed =
  match Regemu_adversary.Lowerbound.execute factory p ~seed () with
  | Ok run -> run.trace
  | Error e -> Alcotest.failf "adversarial run failed: %s" e

let expect_ok label = function
  | Ok () -> ()
  | Error v -> Alcotest.failf "%s: %a" label Invariants.violation_pp v

let unit_tests =
  [
    test "hand-built double pending write is caught" (fun () ->
        let sim = Sim.create ~n:1 () in
        let b = Sim.alloc sim ~server:(Id.Server.of_int 0) Base_object.Register in
        let c = Sim.new_client sim in
        ignore
          (Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 1))
             ~on_response:ignore);
        ignore
          (Sim.trigger sim ~client:c b (Base_object.Write (Value.Int 2))
             ~on_response:ignore);
        match
          Invariants.single_pending_write_per_writer_register (Sim.trace sim)
        with
        | Error v ->
            Alcotest.(check int) "client" 0 (Id.Client.to_int v.client)
        | Ok () -> Alcotest.fail "expected violation");
    test "distinct clients writing the same register are fine" (fun () ->
        let sim = Sim.create ~n:1 () in
        let b = Sim.alloc sim ~server:(Id.Server.of_int 0) Base_object.Register in
        let c1 = Sim.new_client sim and c2 = Sim.new_client sim in
        ignore
          (Sim.trigger sim ~client:c1 b (Base_object.Write (Value.Int 1))
             ~on_response:ignore);
        ignore
          (Sim.trigger sim ~client:c2 b (Base_object.Write (Value.Int 2))
             ~on_response:ignore);
        expect_ok "two clients"
          (Invariants.single_pending_write_per_writer_register (Sim.trace sim)));
    test "pending-at-return counts only low-level writes" (fun () ->
        let sim = Sim.create ~n:1 () in
        let b = Sim.alloc sim ~server:(Id.Server.of_int 0) Base_object.Register in
        let c = Sim.new_client sim in
        let call =
          Sim.invoke sim ~client:c (Trace.H_write (Value.Int 1)) (fun () ->
              ignore
                (Sim.trigger sim ~client:c b Base_object.Read
                   ~on_response:ignore);
              Value.Unit)
        in
        ignore call;
        (* a pending READ does not count against the f budget *)
        expect_ok "reads ignored"
          (Invariants.max_pending_writes_at_return (Sim.trace sim) ~f:0));
  ]

let discipline_tests =
  [
    test "algorithm2 never double-pends a register (fair runs)" (fun () ->
        List.iter
          (fun (p, seed) ->
            expect_ok "alg2"
              (Invariants.single_pending_write_per_writer_register
                 (trace_of Regemu_core.Algorithm2.factory p ~seed)))
          [
            (Params.make_exn ~k:2 ~f:1 ~n:4, 3);
            (Params.make_exn ~k:5 ~f:2 ~n:6, 11);
          ]);
    test "algorithm2 never double-pends a register (adversarial runs)"
      (fun () ->
        let p = Params.make_exn ~k:4 ~f:2 ~n:6 in
        expect_ok "alg2-adv"
          (Invariants.single_pending_write_per_writer_register
             (adversarial_trace Regemu_core.Algorithm2.factory p ~seed:9)));
    test "algorithm2 returns writes with at most f pending (Observation 3)"
      (fun () ->
        let p = Params.make_exn ~k:3 ~f:2 ~n:8 in
        expect_ok "alg2-obs3"
          (Invariants.max_pending_writes_at_return
             (adversarial_trace Regemu_core.Algorithm2.factory p ~seed:5)
             ~f:p.Params.f));
    test "layered construction honours both invariants" (fun () ->
        let p = Params.make_exn ~k:3 ~f:1 ~n:3 in
        let tr = adversarial_trace Regemu_baselines.Layered.factory p ~seed:2 in
        expect_ok "layered-single"
          (Invariants.single_pending_write_per_writer_register tr);
        expect_ok "layered-obs3"
          (Invariants.max_pending_writes_at_return tr ~f:p.Params.f));
    test "the naive algorithm violates the covering discipline" (fun () ->
        (* under the adversary, the naive writer re-triggers on registers
           whose previous writes never responded *)
        let p = Params.make_exn ~k:2 ~f:1 ~n:3 in
        match Regemu_adversary.Violation.against_naive ~f:1 with
        | Error e -> Alcotest.failf "construction failed: %s" e
        | Ok _ -> (
            (* rebuild the same schedule and audit the trace: W2 triggers
               on registers still covered by W1?  W1 and W2 are different
               clients, so the per-writer invariant holds; what naive
               violates is Observation 3 — after enough rounds a single
               writer accumulates pending writes *)
            let sim = Sim.create ~n:p.Params.n () in
            let writers = List.init p.Params.k (fun _ -> Sim.new_client sim) in
            let inst = Regemu_baselines.Naive_reg.factory.make sim p ~writers in
            (* block one register's responses forever; have the same
               writer write twice: its second write re-triggers on the
               covered register *)
            let blocked = List.hd (inst.objects ()) in
            let policy =
              Policy.filtered ~name:"block-b0"
                ~keep:(fun sim' ev ->
                  match ev with
                  | Sim.Respond lid -> (
                      match
                        List.find_opt
                          (fun (pd : Sim.pending_info) ->
                            Id.Lop.equal pd.lid lid)
                          (Sim.pending sim')
                      with
                      | Some pd ->
                          not
                            (Id.Obj.equal pd.obj blocked
                            && Regemu_adversary.Script.is_read_op pd.op
                               = false)
                      | None -> false)
                  | Sim.Step _ -> true)
                Policy.responds_first
            in
            let w = List.hd writers in
            ignore
              (Driver.finish_call_exn sim policy ~budget:50_000
                 (inst.write w (Value.Str "a")));
            ignore
              (Driver.finish_call_exn sim policy ~budget:50_000
                 (inst.write w (Value.Str "b")));
            match
              Invariants.single_pending_write_per_writer_register
                (Sim.trace sim)
            with
            | Error _ -> ()
            | Ok () ->
                Alcotest.fail
                  "naive should have double-pended the blocked register"));
  ]

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"algorithm2 keeps the covering discipline on random runs"
         ~count:40
         (QCheck.make QCheck.Gen.(int_range 0 1_000_000) ~print:string_of_int)
         (fun seed ->
           let p = Params.make_exn ~k:2 ~f:1 ~n:4 in
           match
             Scenario.chaos Regemu_core.Algorithm2.factory p
               ~writes_per_writer:2 ~readers:1 ~reads_per_reader:1 ~crashes:1
               ~seed ()
           with
           | Error _ -> false
           | Ok r -> (
               match
                 Invariants.single_pending_write_per_writer_register
                   (Sim.trace r.sim)
               with
               | Ok () -> true
               | Error v ->
                   QCheck.Test.fail_reportf "%a" Invariants.violation_pp v)));
  ]

let suites =
  [
    ("invariants:unit", unit_tests);
    ("invariants:discipline", discipline_tests);
    ("invariants:properties", property_tests);
  ]

(* Tests for the observability layer: the overwrite ring, the tracing
   core and its sampling, the metrics registry and its snapshot schema,
   the Chrome/timeline exporters — and the agreements the docs promise:
   a fixed DST schedule yields a byte-identical trace, and the metrics
   snapshot agrees with the benchmark outcome's own counts. *)

open Regemu_obs

let test name f = Alcotest.test_case name `Quick f

(* a deterministic fake clock: every reading advances 1 µs *)
let with_fake_clock f =
  let t = ref 0L in
  Clock.set_source (fun () ->
      t := Int64.add !t 1_000L;
      !t);
  Fun.protect ~finally:Clock.clear_source f

(* --- the overwrite ring --------------------------------------------------- *)

let ring_tests =
  [
    test "under capacity: fifo order, nothing dropped" (fun () ->
        let r = Ring.create ~capacity:4 ~dummy:0 in
        List.iter (Ring.push r) [ 1; 2; 3 ];
        Alcotest.(check (list int)) "held" [ 1; 2; 3 ] (Ring.to_list r);
        Alcotest.(check int) "length" 3 (Ring.length r);
        Alcotest.(check int) "pushed" 3 (Ring.pushed r);
        Alcotest.(check int) "dropped" 0 (Ring.dropped r));
    test "over capacity: oldest entries are overwritten" (fun () ->
        let r = Ring.create ~capacity:3 ~dummy:0 in
        List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
        Alcotest.(check (list int)) "newest window" [ 3; 4; 5 ] (Ring.to_list r);
        Alcotest.(check int) "length capped" 3 (Ring.length r);
        Alcotest.(check int) "pushed counts everything" 5 (Ring.pushed r);
        Alcotest.(check int) "dropped = pushed - held" 2 (Ring.dropped r));
    test "wrap keeps working after many laps" (fun () ->
        let r = Ring.create ~capacity:2 ~dummy:0 in
        for i = 1 to 100 do
          Ring.push r i
        done;
        Alcotest.(check (list int)) "last two" [ 99; 100 ] (Ring.to_list r);
        Alcotest.(check int) "dropped" 98 (Ring.dropped r));
    test "clear forgets entries, keeps capacity" (fun () ->
        let r = Ring.create ~capacity:3 ~dummy:0 in
        List.iter (Ring.push r) [ 1; 2 ];
        Ring.clear r;
        Alcotest.(check (list int)) "empty" [] (Ring.to_list r);
        Alcotest.(check int) "capacity" 3 (Ring.capacity r);
        Ring.push r 9;
        Alcotest.(check (list int)) "usable again" [ 9 ] (Ring.to_list r));
    test "non-positive capacity is rejected" (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Ring.create: capacity must be >= 1") (fun () ->
            ignore (Ring.create ~capacity:0 ~dummy:0)));
  ]

(* --- the tracing core ----------------------------------------------------- *)

let phs r =
  List.map (fun (e : Event.t) -> e.Event.ph) (Trace.recorder_events r)

let trace_tests =
  [
    test "spans bracket and seq is a per-recorder monotone rank" (fun () ->
        with_fake_clock @@ fun () ->
        let tr = Trace.create () in
        let r = Trace.recorder tr ~name:"w" in
        Trace.span_begin r ~cat:"op" "outer";
        Trace.span_begin r ~cat:"op" "inner";
        Trace.instant r ~cat:"msg" "send";
        Trace.span_end r ~cat:"op" "inner";
        Trace.span_end r ~cat:"op" "outer";
        Alcotest.(check bool)
          "phases bracket" true
          (phs r
          = Event.[ Begin; Begin; Instant; End; End ]);
        let seqs =
          List.map (fun (e : Event.t) -> e.Event.seq) (Trace.recorder_events r)
        in
        Alcotest.(check (list int)) "seq ranks" [ 0; 1; 2; 3; 4 ] seqs);
    test "merged view orders by (ts, recorder id, seq)" (fun () ->
        with_fake_clock @@ fun () ->
        let tr = Trace.create () in
        let a = Trace.recorder tr ~name:"a" in
        let b = Trace.recorder tr ~name:"b" in
        Trace.instant b ~cat:"msg" "b0";
        (* ts 1000 *)
        Trace.instant a ~cat:"msg" "a0";
        (* ts 2000 *)
        Trace.instant b ~cat:"msg" "b1";
        (* ts 3000 *)
        Alcotest.(check (list string))
          "merged order" [ "b0"; "a0"; "b1" ]
          (List.map (fun (_, (e : Event.t)) -> e.Event.name) (Trace.events tr)));
    test "1-in-N sampling keeps every Nth decision, from the first" (fun () ->
        let tr = Trace.create ~ops_every:3 ~msgs_every:2 () in
        let r = Trace.recorder tr ~name:"c" in
        Alcotest.(check (list bool))
          "ops 1-in-3"
          [ true; false; false; true; false; false; true ]
          (List.init 7 (fun _ -> Trace.sample_op r));
        Alcotest.(check (list bool))
          "msgs 1-in-2"
          [ true; false; true; false ]
          (List.init 4 (fun _ -> Trace.sample_msg r)));
    test "full sampling never says no" (fun () ->
        let tr = Trace.create () in
        let r = Trace.recorder tr ~name:"c" in
        Alcotest.(check bool) "all yes" true
          (List.for_all Fun.id (List.init 20 (fun _ -> Trace.sample_op r))));
    test "non-positive knobs are rejected" (fun () ->
        Alcotest.check_raises "ops_every"
          (Invalid_argument "Trace.create: ops_every >= 1") (fun () ->
            ignore (Trace.create ~ops_every:0 ())));
    test "ring overwrite surfaces in recorded/dropped totals" (fun () ->
        with_fake_clock @@ fun () ->
        let tr = Trace.create ~ring_capacity:4 () in
        let r = Trace.recorder tr ~name:"w" in
        for _ = 1 to 10 do
          Trace.instant r ~cat:"msg" "send"
        done;
        Alcotest.(check int) "recorded" 10 (Trace.recorded tr);
        Alcotest.(check int) "dropped" 6 (Trace.dropped tr);
        Alcotest.(check int)
          "held" 4
          (List.length (Trace.recorder_events r)));
  ]

(* --- the metrics registry ------------------------------------------------- *)

let metric_value mx name =
  match Metrics.find mx name with
  | None -> Alcotest.failf "metric %S not in the registry" name
  | Some j -> (
      match Json.(member "value" j |> Option.map to_int_opt |> Option.join) with
      | Some v -> v
      | None -> Alcotest.failf "metric %S has no integer value" name)

let metrics_tests =
  [
    test "counters and gauges register, update, and snapshot" (fun () ->
        let mx = Metrics.create () in
        let c = Metrics.counter mx ~help:"h" "reqs" in
        let g = Metrics.gauge mx ~unit_:"bytes" "depth" in
        Metrics.incr c;
        Metrics.add c 4;
        Metrics.set g 17;
        Alcotest.(check int) "counter" 5 (metric_value mx "reqs");
        Alcotest.(check int) "gauge" 17 (metric_value mx "depth");
        match Metrics.validate_snapshot (Metrics.snapshot mx) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "snapshot failed validation: %s" e);
    test "registration is idempotent: same name, same handle" (fun () ->
        let mx = Metrics.create () in
        let c1 = Metrics.counter mx "reqs" in
        let c2 = Metrics.counter mx "reqs" in
        Metrics.incr c1;
        Metrics.incr c2;
        Alcotest.(check bool) "physically shared" true (c1 == c2);
        Alcotest.(check int) "one metric accumulates" 2 (metric_value mx "reqs");
        let n_metrics =
          match Json.member "metrics" (Metrics.snapshot mx) with
          | Some (Json.List l) -> List.length l
          | _ -> -1
        in
        Alcotest.(check int) "snapshot has one entry" 1 n_metrics);
    test "re-registering under a different kind is refused" (fun () ->
        let mx = Metrics.create () in
        ignore (Metrics.counter mx "reqs");
        Alcotest.check_raises "kind clash"
          (Invalid_argument "Metrics: \"reqs\" re-registered with a different kind")
          (fun () -> ignore (Metrics.gauge mx "reqs")));
    test "histograms bucket by inclusive upper bound, +inf implied" (fun () ->
        let mx = Metrics.create () in
        let h = Metrics.histogram mx ~edges:[| 10; 20 |] "lat" in
        List.iter (Metrics.observe h) [ 5; 10; 15; 25; 1000 ];
        Alcotest.(check (array int))
          "buckets" [| 2; 1; 2 |] (Metrics.hist_buckets h);
        Alcotest.(check int) "count" 5 (Metrics.hist_count h);
        Alcotest.(check int) "sum" 1055 (Metrics.hist_sum h);
        match Metrics.validate_snapshot (Metrics.snapshot mx) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "snapshot failed validation: %s" e);
    test "histogram re-registration must keep the same edges" (fun () ->
        let mx = Metrics.create () in
        let h1 = Metrics.histogram mx ~edges:[| 1; 2 |] "lat" in
        let h2 = Metrics.histogram mx ~edges:[| 1; 2 |] "lat" in
        Alcotest.(check bool) "same handle" true (h1 == h2);
        Alcotest.check_raises "edge clash"
          (Invalid_argument "Metrics: \"lat\" re-registered with a different kind")
          (fun () -> ignore (Metrics.histogram mx ~edges:[| 9 |] "lat")));
    test "polled gauges read at snapshot time; latest poller wins" (fun () ->
        let mx = Metrics.create () in
        let v = ref 1 in
        Metrics.gauge_fn mx "live" (fun () -> !v);
        v := 42;
        Alcotest.(check int) "polled late" 42 (metric_value mx "live");
        Metrics.gauge_fn mx "live" (fun () -> 7);
        Alcotest.(check int) "replaced" 7 (metric_value mx "live"));
    test "snapshot lists metrics sorted by name" (fun () ->
        let mx = Metrics.create () in
        ignore (Metrics.counter mx "zeta");
        ignore (Metrics.counter mx "alpha");
        let names =
          match Json.member "metrics" (Metrics.snapshot mx) with
          | Some (Json.List l) ->
              List.filter_map
                (fun m ->
                  Json.(member "name" m |> Option.map to_str_opt |> Option.join))
                l
          | _ -> []
        in
        Alcotest.(check (list string)) "sorted" [ "alpha"; "zeta" ] names);
    test "validate_snapshot rejects junk" (fun () ->
        let reject doc =
          match Metrics.validate_snapshot doc with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "accepted a malformed snapshot"
        in
        reject (Json.Obj []);
        reject (Json.Obj [ ("schema", Json.Str "regemu-bench/1") ]);
        reject
          (Json.Obj
             [
               ("schema", Json.Str Metrics.schema);
               ( "metrics",
                 Json.List [ Json.Obj [ ("name", Json.Str "x") ] ] );
             ]);
        (* duplicate names *)
        let m =
          Json.Obj
            [
              ("name", Json.Str "x");
              ("type", Json.Str "counter");
              ("value", Json.Int 0);
            ]
        in
        reject
          (Json.Obj
             [
               ("schema", Json.Str Metrics.schema);
               ("metrics", Json.List [ m; m ]);
             ]));
  ]

(* --- the exporters -------------------------------------------------------- *)

let export_tests =
  [
    test "chrome export matches the golden document" (fun () ->
        with_fake_clock @@ fun () ->
        let tr = Trace.create () in
        let r = Trace.recorder tr ~name:"client-0" in
        Trace.span_begin r ~cat:"op"
          ~args:[ ("value", Event.S "v1") ]
          "write";
        Trace.instant r ~cat:"msg" ~args:[ ("rid", Event.I 7) ] "send";
        Trace.span_end r ~cat:"op" "write";
        let open Json in
        let ev ~name ~cat ~ph ~ts ~args =
          Obj
            [
              ("name", Str name);
              ("cat", Str cat);
              ("ph", Str ph);
              ("ts", Int ts);
              ("pid", Int 1);
              ("tid", Int 0);
              ("args", Obj args);
            ]
        in
        let expected =
          Obj
            [
              ("schema", Str "regemu-trace/1");
              ("displayTimeUnit", Str "ms");
              ("recorded", Int 3);
              ("dropped", Int 0);
              ( "traceEvents",
                List
                  [
                    Obj
                      [
                        ("name", Str "thread_name");
                        ("ph", Str "M");
                        ("pid", Int 1);
                        ("tid", Int 0);
                        ("args", Obj [ ("name", Str "client-0") ]);
                      ];
                    ev ~name:"write" ~cat:"op" ~ph:"B" ~ts:1
                      ~args:
                        [
                          ("tsns", Int 1000); ("seq", Int 0);
                          ("value", Str "v1");
                        ];
                    ev ~name:"send" ~cat:"msg" ~ph:"i" ~ts:2
                      ~args:[ ("tsns", Int 2000); ("seq", Int 1); ("rid", Int 7) ];
                    ev ~name:"write" ~cat:"op" ~ph:"E" ~ts:3
                      ~args:[ ("tsns", Int 3000); ("seq", Int 2) ];
                  ] );
            ]
        in
        Alcotest.(check string)
          "golden" (to_string expected)
          (to_string (Export.chrome_json tr)));
    test "an exported trace validates and round-trips exactly" (fun () ->
        with_fake_clock @@ fun () ->
        let tr = Trace.create () in
        let a = Trace.recorder tr ~name:"a" in
        let b = Trace.recorder tr ~name:"b" in
        Trace.span_begin a ~cat:"op" ~args:[ ("n", Event.I 3) ] "read";
        Trace.instant b ~cat:"fault" ~args:[ ("wiped", Event.B true) ] "restart";
        Trace.span_end a ~cat:"op" ~args:[ ("result", Event.S "v0") ] "read";
        let doc = Export.chrome_json tr in
        (match Export.validate_chrome doc with
        | Ok () -> ()
        | Error e -> Alcotest.failf "validation: %s" e);
        (* survive a serialization round trip too *)
        match Json.of_string (Json.to_string doc) with
        | Error e -> Alcotest.failf "reparse: %s" e
        | Ok doc' -> (
            match Export.of_chrome_json doc' with
            | Error e -> Alcotest.failf "import: %s" e
            | Ok rows ->
                Alcotest.(check bool)
                  "rows = original tagged events" true
                  (rows = Trace.events tr)));
    test "validate_chrome rejects wrong schemas and unknown phases" (fun () ->
        let reject doc =
          match Export.validate_chrome doc with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "accepted a malformed trace"
        in
        reject (Json.Obj []);
        reject (Json.Obj [ ("schema", Json.Str "regemu-dst/1") ]);
        reject
          (Json.Obj
             [
               ("schema", Json.Str Export.schema);
               ( "traceEvents",
                 Json.List
                   [ Json.Obj [ ("ph", Json.Str "X"); ("tid", Json.Int 0) ] ] );
             ]));
    test "the text timeline indents span nesting and offsets times" (fun () ->
        with_fake_clock @@ fun () ->
        let tr = Trace.create () in
        let r = Trace.recorder tr ~name:"c0" in
        Trace.span_begin r ~cat:"op" "write";
        Trace.span_begin r ~cat:"op" "await";
        Trace.span_end r ~cat:"op" "await";
        Trace.span_end r ~cat:"op" "write";
        let s = Export.timeline tr in
        Alcotest.(check bool)
          "outer at depth 0" true
          (Astring_contains.contains s "c0  > op/write");
        Alcotest.(check bool)
          "inner indented" true
          (Astring_contains.contains s "c0    > op/await");
        Alcotest.(check bool)
          "first line at t=0" true
          (Astring_contains.contains s "0.000");
        Alcotest.(check string)
          "empty trace renders a placeholder" "(empty trace)\n"
          (Export.timeline_of_events []));
  ]

(* --- determinism under DST ------------------------------------------------ *)

let dst_trace () =
  let tr = Trace.create () in
  let mx = Metrics.create () in
  let sink = Regemu_live.Sink.make ~trace:tr ~metrics:mx () in
  let cfg =
    { (Regemu_dst.Dst.default_config ~seed:31) with
      Regemu_dst.Dst.ops_per_client = 4 }
  in
  let o = Regemu_dst.Dst.run ~sink cfg in
  (Json.to_string (Export.chrome_json tr),
   Json.to_string (Metrics.snapshot mx),
   o)

let determinism_tests =
  [
    test "one DST schedule exports a byte-identical trace and snapshot"
      (fun () ->
        let t1, m1, o1 = dst_trace () in
        let t2, m2, o2 = dst_trace () in
        Alcotest.(check string)
          "run digests" (Regemu_dst.Dst.run_digest o1)
          (Regemu_dst.Dst.run_digest o2);
        Alcotest.(check string) "chrome traces" t1 t2;
        Alcotest.(check string) "metrics snapshots" m1 m2);
    test "the committed counterexample replays to one exact trace" (fun () ->
        let path =
          if Sys.file_exists "dst_replay_sample.json" then
            "dst_replay_sample.json"
          else "test/dst_replay_sample.json"
        in
        match Regemu_dst.Dst_fuzz.read_replay path with
        | Error e -> Alcotest.failf "%s: %s" path e
        | Ok spec ->
            let traced () =
              let tr = Trace.create () in
              let sink = Regemu_live.Sink.make ~trace:tr () in
              let r = Regemu_dst.Dst_fuzz.replay ~sink spec in
              Alcotest.(check bool)
                "replay reproduced" true
                (Regemu_dst.Dst_fuzz.replay_matched r);
              Json.to_string (Export.chrome_json tr)
            in
            Alcotest.(check string) "byte-identical" (traced ()) (traced ()));
  ]

(* --- agreement with the benchmark's own counts ---------------------------- *)

(* the satellite bugfix guard: the trace and the metrics snapshot must
   agree with what lands in BENCH_live.json — each wire send counted
   exactly once (retransmissions included, duplicates as duplicates) *)
let agreement_tests =
  [
    test "metrics snapshot = outcome counts on a chaos run" (fun () ->
        let open Regemu_live in
        let mx = Metrics.create () in
        let sink = Sink.make ~metrics:mx () in
        let spec =
          { (Live_bench.default_spec ~algo:Live_bench.Abd ~chaos:true ~seed:9 ())
            with Live_bench.ops_per_client = 15 }
        in
        let o = Live_bench.run ~sink spec in
        let pairs =
          [
            ("transport.sent", o.Live_bench.msgs_sent);
            ("transport.delivered", o.Live_bench.msgs_delivered);
            ("transport.duplicated", o.Live_bench.msgs_duplicated);
            ("transport.delayed", o.Live_bench.msgs_delayed);
            ("transport.dropped", o.Live_bench.msgs_dropped);
            ("transport.cut", o.Live_bench.msgs_cut);
            ("client.retries", o.Live_bench.retries);
            ("client.unavailable", o.Live_bench.unavailable);
            ("ops.completed", o.Live_bench.ops);
            ("cluster.crashes", o.Live_bench.crashes);
            ("cluster.restarts", o.Live_bench.restarts);
          ]
        in
        List.iter
          (fun (name, expect) ->
            Alcotest.(check int) name expect (metric_value mx name))
          pairs;
        match Metrics.validate_snapshot (Metrics.snapshot mx) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "snapshot failed validation: %s" e);
    test "full-sampling trace counts each wire send exactly once" (fun () ->
        let open Regemu_live in
        let tr = Trace.create () in
        let sink = Sink.make ~trace:tr () in
        let spec =
          { (Live_bench.default_spec ~algo:Live_bench.Abd ~chaos:false ~seed:4 ())
            with Live_bench.ops_per_client = 15 }
        in
        let o = Live_bench.run ~sink spec in
        Alcotest.(check bool) "clean" true (Live_bench.clean o);
        Alcotest.(check int) "no ring overwrite" 0 (Trace.dropped tr);
        let count p =
          List.length (List.filter (fun (_, e) -> p e) (Trace.events tr))
        in
        let is name (e : Event.t) = e.Event.cat = "msg" && e.Event.name = name in
        Alcotest.(check int)
          "send events = msgs_sent" o.Live_bench.msgs_sent (count (is "send"));
        Alcotest.(check int)
          "recv events = msgs_delivered" o.Live_bench.msgs_delivered
          (count (is "recv"));
        let op_begin (e : Event.t) =
          e.Event.ph = Event.Begin && e.Event.cat = "op"
          && (e.Event.name = "write" || e.Event.name = "read")
        in
        Alcotest.(check int)
          "op spans = completed ops" o.Live_bench.ops (count op_begin));
  ]

let suites =
  [
    ("obs.ring", ring_tests);
    ("obs.trace", trace_tests);
    ("obs.metrics", metrics_tests);
    ("obs.export", export_tests);
    ("obs.determinism", determinism_tests);
    ("obs.agreement", agreement_tests);
  ]

(* Tests for the pluggable transport backends: the lock-free MPSC ring
   under the [Domains] backend, the interruptible Alarm, the binary
   codec of the [Socket] backend, and cluster-level smoke on both new
   fabrics. *)

open Regemu_objects
open Regemu_live
module Json = Regemu_obs.Json
module Proto = Regemu_netsim.Proto

let test name f = Alcotest.test_case name `Quick f

(* wait for a counter to reach [target] (lanes are asynchronous) *)
let settle ?(deadline_s = 5.0) read target =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if read () >= target then true
    else if Unix.gettimeofday () -. t0 > deadline_s then false
    else (
      Thread.delay 0.001;
      go ())
  in
  go ()

(* --- mpsc --------------------------------------------------------------- *)

let mpsc_tests =
  [
    test "single producer is FIFO" (fun () ->
        let q = Mpsc.create () in
        List.iter (Mpsc.push q) [ 1; 2; 3; 4; 5 ];
        let rec drain acc =
          match Mpsc.try_pop q with
          | Some v -> drain (v :: acc)
          | None -> List.rev acc
        in
        Alcotest.(check (list int)) "pop order" [ 1; 2; 3; 4; 5 ] (drain []);
        Alcotest.(check bool) "empty after drain" true (Mpsc.is_empty q);
        Alcotest.(check int) "pushed" 5 (Mpsc.pushed q);
        Alcotest.(check int) "popped" 5 (Mpsc.popped q));
    test "park blocks until a push wakes the consumer" (fun () ->
        let q = Mpsc.create () in
        let got = Atomic.make 0 in
        let consumer =
          Domain.spawn (fun () ->
              let stop () = Atomic.get got < 0 in
              let rec go () =
                if not (stop ()) then begin
                  (match Mpsc.try_pop q with
                  | Some v -> Atomic.set got v
                  | None ->
                      Mpsc.park q ~ready:(fun () ->
                          (not (Mpsc.is_empty q)) || stop ()));
                  if Atomic.get got = 0 then go ()
                end
              in
              go ())
        in
        Thread.delay 0.02;  (* give the consumer time to park *)
        Mpsc.push q 42;
        Alcotest.(check bool) "woken and delivered" true
          (settle (fun () -> Atomic.get got) 42);
        Domain.join consumer);
    (* The list-model property: against N concurrent domain producers,
       the single consumer pops every element exactly once, and each
       producer's elements come out in its own push order. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:15
         ~name:"mpsc: exactly-once + per-producer FIFO under domain producers"
         (QCheck.make
            QCheck.Gen.(
              pair (int_range 1 4) (int_range 0 60)
              >|= fun (producers, per) -> (producers, per)))
         (fun (producers, per) ->
           let q = Mpsc.create () in
           let doms =
             List.init producers (fun p ->
                 Domain.spawn (fun () ->
                     for i = 0 to per - 1 do
                       Mpsc.push q (p, i)
                     done))
           in
           let total = producers * per in
           let seen = Array.make producers [] in
           let n = ref 0 in
           let t0 = Unix.gettimeofday () in
           while !n < total && Unix.gettimeofday () -. t0 < 10.0 do
             match Mpsc.try_pop q with
             | Some (p, i) ->
                 seen.(p) <- i :: seen.(p);
                 incr n
             | None -> Domain.cpu_relax ()
           done;
           List.iter Domain.join doms;
           if !n <> total then
             QCheck.Test.fail_reportf "popped %d of %d" !n total;
           Array.iteri
             (fun p l ->
               let got = List.rev l in
               let want = List.init per Fun.id in
               if got <> want then
                 QCheck.Test.fail_reportf
                   "producer %d out of order (or lost/duplicated)" p)
             seen;
           Mpsc.is_empty q));
  ]

(* --- alarm -------------------------------------------------------------- *)

let alarm_tests =
  [
    test "wait times out on its own" (fun () ->
        let a = Alarm.create () in
        let t0 = Unix.gettimeofday () in
        Alarm.wait a 0.02;
        let dt = Unix.gettimeofday () -. t0 in
        Alcotest.(check bool) "slept at least ~the period" true (dt >= 0.015);
        Alcotest.(check bool) "not rung" false (Alarm.rung a);
        Alarm.close a);
    test "ring interrupts a long wait and is sticky" (fun () ->
        let a = Alarm.create () in
        let ringer =
          Thread.create
            (fun () ->
              Thread.delay 0.02;
              Alarm.ring a)
            ()
        in
        let t0 = Unix.gettimeofday () in
        Alarm.wait a 10.0;
        let dt = Unix.gettimeofday () -. t0 in
        Alcotest.(check bool) "woken well before the deadline" true (dt < 5.0);
        (* sticky: every later wait returns immediately *)
        let t1 = Unix.gettimeofday () in
        Alarm.wait a 10.0;
        Alcotest.(check bool) "rung wait is immediate" true
          (Unix.gettimeofday () -. t1 < 1.0);
        Alcotest.(check bool) "rung" true (Alarm.rung a);
        Thread.join ringer;
        Alarm.close a);
  ]

(* --- codec -------------------------------------------------------------- *)

let values =
  [
    Value.Unit;
    Value.Bool true;
    Value.Bool false;
    Value.Int 0;
    Value.Int (-1);
    Value.Int max_int;
    Value.Int min_int;
    Value.Str "";
    Value.Str "hello";
    Value.Str (String.make 300 '\xff');
    Value.Pair (Value.Int 7, Value.Str "x");
    Value.Pair (Value.Pair (Value.Bool true, Value.Unit), Value.Int 3);
  ]

let payloads =
  let v = Value.Pair (Value.Int 42, Value.Str "ts") in
  [
    Proto.Query { rid = 0 };
    Proto.Query { rid = max_int };
    Proto.Query_reply { rid = 1; stored = v };
    Proto.Update { rid = 2; proposed = v };
    Proto.Update_reply { rid = 3 };
    Proto.Reg_read { rid = 4; reg = 9 };
    Proto.Reg_read_reply { rid = 5; stored = Value.Str "r" };
    Proto.Reg_write { rid = 6; reg = 0; proposed = Value.Unit };
    Proto.Reg_write_reply { rid = 7 };
    Proto.Kquery { rid = 8; key = 11 };
    Proto.Kquery_reply { rid = 9; key = 12; stored = Value.Bool false };
    Proto.Kupdate { rid = 10; key = 13; proposed = v };
    Proto.Kupdate_reply { rid = 11; key = 14 };
  ]

let msgs =
  Codec.Ensure_regs 0 :: Codec.Ensure_regs 17
  :: List.concat_map
       (fun payload ->
         List.concat_map
           (fun dest ->
             [ Codec.Env { Transport_intf.src = 3; dest; payload } ])
           [ Transport_intf.To_server 1; Transport_intf.To_client 2 ])
       payloads
  @ List.map
      (fun stored ->
        Codec.Env
          {
            Transport_intf.src = 0;
            dest = Transport_intf.To_client 0;
            payload = Proto.Query_reply { rid = 99; stored };
          })
      values

let codec_tests =
  [
    test "every message round-trips byte-identically" (fun () ->
        List.iter
          (fun m ->
            let s = Codec.encode m in
            let m' = Codec.decode s in
            Alcotest.(check bool) "decode inverts encode" true (m = m');
            (* canonical: exactly one byte representation per message *)
            Alcotest.(check string) "re-encode is byte-identical" s
              (Codec.encode m'))
          msgs);
    test "truncated bodies are rejected at every cut point" (fun () ->
        let s =
          Codec.encode
            (Codec.Env
               {
                 Transport_intf.src = 1;
                 dest = Transport_intf.To_server 2;
                 payload =
                   Proto.Update
                     { rid = 5; proposed = Value.Pair (Value.Int 1, Value.Str "v") };
               })
        in
        for cut = 0 to String.length s - 1 do
          match Codec.decode (String.sub s 0 cut) with
          | exception Codec.Malformed _ -> ()
          | _ ->
              Alcotest.failf "truncation to %d bytes decoded as a message" cut
        done);
    test "garbage and trailing bytes are rejected" (fun () ->
        (match Codec.decode "\xde\xad\xbe\xef" with
        | exception Codec.Malformed _ -> ()
        | _ -> Alcotest.fail "garbage tag decoded");
        (match Codec.decode "" with
        | exception Codec.Malformed _ -> ()
        | _ -> Alcotest.fail "empty body decoded");
        let s = Codec.encode (Codec.Ensure_regs 3) in
        match Codec.decode (s ^ "\x00") with
        | exception Codec.Malformed _ -> ()
        | _ -> Alcotest.fail "trailing byte accepted");
    test "framing: write_msg/read_msg over a pipe, EOF at a boundary"
      (fun () ->
        let r, w = Unix.pipe ~cloexec:true () in
        let sent = [ List.nth msgs 0; List.nth msgs 3; List.nth msgs 9 ] in
        List.iter (Codec.write_msg w) sent;
        Unix.close w;
        let got =
          List.map (fun _ -> Option.get (Codec.read_msg r)) sent
        in
        Alcotest.(check bool) "frames round-trip in order" true (sent = got);
        Alcotest.(check bool) "clean EOF is None" true
          (Codec.read_msg r = None);
        Unix.close r);
    test "framing: mid-frame EOF is Malformed" (fun () ->
        let r, w = Unix.pipe ~cloexec:true () in
        let s = Codec.encode (List.nth msgs 5) in
        (* a frame header promising more bytes than ever arrive *)
        let hdr = Bytes.create 4 in
        Bytes.set_int32_be hdr 0 (Int32.of_int (String.length s));
        ignore (Unix.write w hdr 0 4);
        ignore (Unix.write_substring w s 0 (String.length s / 2));
        Unix.close w;
        (match Codec.read_msg r with
        | exception Codec.Malformed _ -> ()
        | _ -> Alcotest.fail "mid-frame EOF not rejected");
        Unix.close r);
  ]

(* --- domains transport --------------------------------------------------- *)

let query i = Proto.Query { rid = i }

let domains_config ~seed =
  { (Transport.default_config ~seed) with backend = Transport.Domains }

let domains_tests =
  [
    test "per-destination FIFO when reorder=false (mirror of the \
          sharded-lane test)" (fun () ->
        let per_dest : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
        let lock = Mutex.create () in
        let deliver (e : Transport.envelope) =
          Mutex.lock lock;
          let key =
            match e.dest with
            | Transport.To_server s -> s
            | Transport.To_client c -> 100 + c
          in
          let l =
            match Hashtbl.find_opt per_dest key with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace per_dest key l;
                l
          in
          l := Proto.rid_of e.payload :: !l;
          Mutex.unlock lock
        in
        let tr =
          Transport.create
            { (domains_config ~seed:5) with reorder = false }
            ~servers:3 ~deliver
        in
        Alcotest.(check bool) "domains backend selected" true
          (Transport.backend tr = Transport.Domains);
        Transport.start tr;
        let total = 300 in
        for i = 0 to total - 1 do
          let dest =
            if i mod 4 = 3 then Transport.To_client (i mod 2)
            else Transport.To_server (i mod 4)
          in
          Transport.send tr { Transport.src = 0; dest; payload = query i }
        done;
        Alcotest.(check bool) "all delivered" true
          (settle (fun () -> Transport.delivered tr) total);
        Transport.stop tr;
        Alcotest.(check int) "four lanes" 4 (Transport.lanes tr);
        Hashtbl.iter
          (fun _ l ->
            let got = List.rev !l in
            Alcotest.(check (list int)) "per-destination send order"
              (List.sort compare got) got)
          per_dest);
    test "a downed server's lane parks; restart releases the backlog"
      (fun () ->
        let delivered = Atomic.make 0 in
        let tr =
          Transport.create
            { (domains_config ~seed:6) with reorder = false }
            ~servers:2
            ~deliver:(fun _ -> Atomic.incr delivered)
        in
        Transport.start tr;
        Transport.set_server_up tr ~server:0 false;
        for i = 0 to 19 do
          Transport.send tr
            { Transport.src = 0; dest = Transport.To_server 0; payload = query i }
        done;
        Thread.delay 0.05;
        Alcotest.(check int) "nothing delivered while down" 0
          (Atomic.get delivered);
        (* the other lanes still flow *)
        Transport.send tr
          { Transport.src = 0; dest = Transport.To_server 1; payload = query 99 };
        Alcotest.(check bool) "other server unaffected" true
          (settle (fun () -> Atomic.get delivered) 1);
        Transport.set_server_up tr ~server:0 true;
        Alcotest.(check bool) "backlog released on restart" true
          (settle (fun () -> Atomic.get delivered) 21);
        Transport.stop tr);
  ]

(* --- cluster-level smoke on the new fabrics ------------------------------ *)

let run_spec backend ~chaos ~seed =
  Live_bench.run
    {
      (Live_bench.default_spec ~backend ~algo:Live_bench.Abd ~chaos ~seed ())
      with k = 1; readers = 2; ops_per_client = 40;
    }

let check_clean what (r : Checker.result) =
  if not (Checker.ok r) then
    Alcotest.failf "%s: checker found a violation: %a" what Checker.result_pp r

let cluster_tests =
  [
    test "domains: ABD with chaos completes clean" (fun () ->
        let o = run_spec Transport.Domains ~chaos:true ~seed:11 in
        check_clean "domains chaos" o.Live_bench.check;
        Alcotest.(check int) "every op completed" (3 * 40) o.Live_bench.ops;
        Alcotest.(check bool) "clean" true (Live_bench.clean o));
    test "socket: ABD quiet run completes clean over real processes"
      (fun () ->
        let o = run_spec Transport.Socket ~chaos:false ~seed:12 in
        check_clean "socket quiet" o.Live_bench.check;
        Alcotest.(check int) "every op completed" (3 * 40) o.Live_bench.ops;
        Alcotest.(check bool) "clean" true (Live_bench.clean o));
    test "socket: one crash/restart (a fresh amnesiac child) stays \
          WS-regular at f=1" (fun () ->
        (* one wiped server of three: every f+1 quorum still touches an
           unwiped copy, so ABD remains WS-regular — the single-crash
           case the socket fabric must survive.  (Repeated wipes of
           different servers would not be, which is why the socket
           smoke suite runs quiet.) *)
        let cfg =
          let base = Cluster.default_config ~n:3 ~seed:13 in
          {
            base with
            Cluster.transport =
              {
                base.Cluster.transport with
                Transport.backend = Transport.Socket;
                reorder = false;
              };
          }
        in
        let cluster = Cluster.create cfg in
        let abd = Abd_live.create cluster ~f:1 () in
        let w = Cluster.new_client cluster in
        let r = Cluster.new_client cluster in
        Cluster.start cluster;
        let checker = Checker.spawn cluster () in
        Abd_live.write abd w (Value.Str "pre-crash");
        Cluster.crash cluster 0;
        for i = 1 to 10 do
          Abd_live.write abd w (Value.Str (Printf.sprintf "during-%d" i));
          ignore (Abd_live.read abd r)
        done;
        Cluster.restart cluster 0;
        for i = 1 to 10 do
          ignore (Abd_live.read abd r);
          Abd_live.write abd w (Value.Str (Printf.sprintf "after-%d" i))
        done;
        let res = Checker.stop checker in
        Cluster.shutdown cluster;
        check_clean "socket crash/restart" res;
        Alcotest.(check int) "all 41 ops completed" 41
          (Cluster.stats cluster).Cluster.ops_completed);
  ]

(* --- regemu-bench/2 validation ------------------------------------------ *)

let bench_row extra =
  Json.Obj
    ([
       ("name", Json.Str "saturate/abd/threads/clients=2");
       ("measure", Json.Str "throughput");
       ("backend", Json.Str "threads");
       ("ns_per_run", Json.Float 1000.0);
     ]
    @ extra)

let bench_doc rows =
  Json.Obj
    [ ("schema", Json.Str "regemu-bench/2"); ("benchmarks", Json.List rows) ]

let schema_tests =
  [
    test "validate_bench_json accepts a minimal /2 document" (fun () ->
        match Live_bench.validate_bench_json (bench_doc [ bench_row [] ]) with
        | Ok () -> ()
        | Error m -> Alcotest.failf "rejected: %s" m);
    test "validate_bench_json rejects a lingering r_square" (fun () ->
        match
          Live_bench.validate_bench_json
            (bench_doc [ bench_row [ ("r_square", Json.Null) ] ])
        with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "r_square accepted in /2");
    test "validate_bench_json rejects an unknown backend" (fun () ->
        let row =
          Json.Obj
            [
              ("name", Json.Str "x");
              ("measure", Json.Str "throughput");
              ("backend", Json.Str "carrier-pigeon");
              ("ns_per_run", Json.Float 1.0);
            ]
        in
        match Live_bench.validate_bench_json (bench_doc [ row ]) with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "unknown backend accepted");
    test "validate_bench_json rejects the /1 schema id" (fun () ->
        let doc =
          Json.Obj
            [
              ("schema", Json.Str "regemu-bench/1");
              ("benchmarks", Json.List []);
            ]
        in
        match Live_bench.validate_bench_json doc with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "/1 accepted by the /2 validator");
  ]

let suites =
  [
    ("backend.mpsc", mpsc_tests);
    ("backend.alarm", alarm_tests);
    ("backend.codec", codec_tests);
    ("backend.domains", domains_tests);
    ("backend.cluster", cluster_tests);
    ("backend.schema", schema_tests);
  ]

(* Must run before anything else: when the socket transport re-execs
   this binary as a server child, [child_check] serves and exits
   instead of running the test harness. *)
let () = Regemu_live.Transport_socket.child_check ()

let () =
  Alcotest.run "regemu"
    (Suite_bounds.suites @ Suite_objects.suites @ Suite_sim.suites
   @ Suite_history.suites @ Suite_core.suites @ Suite_emulations.suites
   @ Suite_adversary.suites @ Suite_workload.suites @ Suite_harness.suites
   @ Suite_regularity.suites @ Suite_stats.suites @ Suite_impossibility.suites @ Suite_fuzz.suites @ Suite_netsim.suites @ Suite_mcheck.suites @ Suite_wellformed.suites @ Suite_misc.suites @ Suite_tree_maxreg.suites @ Suite_invariants.suites @ Suite_replay.suites @ Suite_rwb.suites @ Suite_kv.suites @ Suite_ablation.suites @ Suite_props.suites @ Suite_alg2net.suites @ Suite_adi_policy.suites @ Suite_edges.suites @ Suite_leaderboard.suites @ Suite_regemu.suites @ Suite_net_explore.suites @ Suite_live.suites @ Suite_chaos.suites @ Suite_gray.suites @ Suite_dst.suites
   @ Suite_obs.suites @ Suite_keyspace.suites @ Suite_backend.suites
   @ Suite_explore.suites @ Suite_cds.suites)

(* The umbrella library: everything reachable under one namespace, and
   the factory catalogue is complete and consistent. *)

let test name f = Alcotest.test_case name `Quick f

let umbrella_tests =
  [
    test "all_factories names are unique and resolvable" (fun () ->
        let names = List.map fst Regemu.all_factories in
        Alcotest.(check int)
          "unique" (List.length names)
          (List.length (List.sort_uniq compare names));
        Alcotest.(check bool) "has algorithm2" true
          (List.mem "algorithm2" names);
        Alcotest.(check int) "seven algorithms" 7 (List.length names));
    test "factory names match their Emulation.name" (fun () ->
        List.iter
          (fun (name, (f : Regemu.Emulation.factory)) ->
            Alcotest.(check string) "consistent" name f.name)
          Regemu.all_factories);
    test "a full write/read cycle through the umbrella namespace" (fun () ->
        let p = Regemu.Params.make_exn ~k:1 ~f:1 ~n:3 in
        let sim = Regemu.Sim.create ~n:p.n () in
        let w = Regemu.Sim.new_client sim in
        let reg = Regemu.Algorithm2.factory.make sim p ~writers:[ w ] in
        let policy = Regemu.Policy.uniform (Regemu.Rng.create 1) in
        ignore
          (Regemu.Driver.finish_call_exn sim policy ~budget:50_000
             (reg.write w (Regemu.Value.Int 9)));
        let v =
          Regemu.Driver.finish_call_exn sim policy ~budget:50_000
            (reg.read w)
        in
        Alcotest.(check bool) "9" true (Regemu.Value.equal v (Regemu.Value.Int 9)));
    test "checkers and formulas are reachable" (fun () ->
        let p = Regemu.Params.make_exn ~k:3 ~f:1 ~n:5 in
        Alcotest.(check bool)
          "bounds" true
          (Regemu.Formulas.register_lower_bound p
          <= Regemu.Formulas.register_upper_bound p);
        Alcotest.(check bool)
          "ws check on empty history" true
          (Regemu.Ws_check.is_ws_safe []));
    test "expected_objects of every factory is positive and >= 2f+1"
      (fun () ->
        let p = Regemu.Params.make_exn ~k:2 ~f:2 ~n:5 in
        List.iter
          (fun (_, (f : Regemu.Emulation.factory)) ->
            let e = f.expected_objects p in
            if e < (2 * p.Regemu.Params.f) + 1 then
              Alcotest.failf "%s promises %d < 2f+1" f.name e)
          Regemu.all_factories);
  ]

(* Lemma 2's invariants also hold when the reusable Ad_i policy (not
   the bespoke Lemma 1 driver) schedules the run. *)
let monitor_under_policy_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"Lemma 2 invariants hold under the reusable Ad_i policy"
         ~count:25
         (QCheck.make QCheck.Gen.(int_range 0 1_000_000) ~print:string_of_int)
         (fun seed ->
           let open Regemu in
           let p = Params.make_exn ~k:2 ~f:1 ~n:4 in
           let sim = Sim.create ~n:p.n () in
           let writers = List.init p.k (fun _ -> Sim.new_client sim) in
           let inst = Algorithm2.factory.make sim p ~writers in
           let f_set =
             Id.Server.set_of_list
               [ Id.Server.of_int (p.n - 1); Id.Server.of_int (p.n - 2) ]
           in
           let adi = Adi_policy.create sim ~f_set ~rng:(Rng.create seed) in
           let base = Adi_policy.policy adi in
           (* monitor an epoch of our own alongside the policy's *)
           let ok = ref true in
           List.iteri
             (fun i w ->
               let state =
                 Epoch_state.start sim ~f_set
                   ~completed_clients:
                     (Id.Client.set_of_list
                        (List.filteri (fun j _ -> j < i) writers))
               in
               let snapshot = ref Lemma2.initial in
               let monitored =
                 {
                   Policy.name = "monitored";
                   choose =
                     (fun s e ->
                       Epoch_state.advance state;
                       (match Lemma2.check state ~prev:!snapshot with
                       | Ok snap -> snapshot := snap
                       | Error _ -> ok := false);
                       base.Policy.choose s e);
                 }
               in
               ignore
                 (Driver.finish_call_exn sim monitored ~budget:100_000
                    (inst.write w (Value.Int i))))
             writers;
           !ok));
  ]

let suites =
  [
    ("regemu:umbrella", umbrella_tests);
    ("regemu:monitored-policy", monitor_under_policy_tests);
  ]

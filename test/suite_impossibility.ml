(* Tests for the impossibility constructions: Theorem 5 (partitioning)
   and the wait-all liveness failure. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_adversary

let test name f = Alcotest.test_case name `Quick f

let partition_tests =
  [
    test "Theorem 5: n = 2f loses safety (f = 1..3)" (fun () ->
        List.iter
          (fun f ->
            match Partition.impossibility ~f with
            | Error e -> Alcotest.failf "f=%d: %s" f e
            | Ok o -> (
                Alcotest.(check bool)
                  "stale read" true
                  (Value.equal o.read_value Value.v0);
                match o.verdict with
                | Regemu_history.Ws_check.Violated _ -> ()
                | v ->
                    Alcotest.failf "f=%d: expected violation, got %a" f
                      Regemu_history.Ws_check.verdict_pp v))
          [ 1; 2; 3 ]);
    test "Theorem 5 narration mentions the disjoint halves" (fun () ->
        match Partition.impossibility ~f:2 with
        | Error e -> Alcotest.failf "failed: %s" e
        | Ok o ->
            Alcotest.(check bool)
              "has steps" true
              (List.length o.steps >= 3));
    test "f = 0 rejected" (fun () ->
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (Partition.impossibility ~f:0);
             false
           with Invalid_argument _ -> true));
  ]

let waitall_tests =
  [
    test "wait-all write blocks forever after one crash" (fun () ->
        let p = Params.make_exn ~k:1 ~f:1 ~n:3 in
        let sim = Sim.create ~n:3 () in
        let w = Sim.new_client sim in
        let inst = Regemu_baselines.Waitall_reg.factory.make sim p ~writers:[ w ] in
        Sim.crash_server sim (Id.Server.of_int 0);
        let call = inst.write w (Value.Int 1) in
        (match
           Driver.finish_call sim Policy.responds_first ~budget:10_000 call
         with
        | Error Driver.Stuck -> ()
        | Ok _ -> Alcotest.fail "write returned despite the crash"
        | Error o -> Alcotest.failf "expected Stuck, got %a" Driver.outcome_pp o));
    test "wait-all write blocks under the Ad_i adversary (no crash at all)"
      (fun () ->
        (* the adversary merely withholds responses from f registers;
           obstruction-freedom demands the write return anyway, and
           wait-all cannot *)
        let p = Params.make_exn ~k:1 ~f:1 ~n:3 in
        match
          Lowerbound.execute Regemu_baselines.Waitall_reg.factory p ~seed:1
            ~budget_per_epoch:20_000 ()
        with
        | Ok _ -> Alcotest.fail "wait-all should not survive Ad_i"
        | Error msg ->
            Alcotest.(check bool)
              "diagnosed as stuck or starved" true
              (Astring_contains.contains msg "stuck"
              || Astring_contains.contains msg "budget"));
    test "wait-all is fine without failures (it is safe, just not live)"
      (fun () ->
        let p = Params.make_exn ~k:2 ~f:1 ~n:3 in
        match
          Regemu_workload.Scenario.write_sequential
            Regemu_baselines.Waitall_reg.factory p ~read_after_each:true
            ~rounds:2 ~seed:5 ()
        with
        | Error e ->
            Alcotest.failf "failure-free run failed: %a"
              Regemu_workload.Scenario.error_pp e
        | Ok r -> (
            match Regemu_history.Ws_check.check_ws_safe r.history with
            | Regemu_history.Ws_check.Holds -> ()
            | v ->
                Alcotest.failf "ws-safe: %a"
                  Regemu_history.Ws_check.verdict_pp v));
  ]

let suites =
  [
    ("impossibility:theorem5", partition_tests);
    ("impossibility:wait-all", waitall_tests);
  ]

(* Tests for the live cluster runtime: real threads, real faults,
   online checking. *)

open Regemu_objects
open Regemu_live
module Json = Regemu_obs.Json

let test name f = Alcotest.test_case name `Quick f

(* wait for a counter to reach [target] (couriers are asynchronous) *)
let settle ?(deadline_s = 5.0) read target =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if read () >= target then true
    else if Unix.gettimeofday () -. t0 > deadline_s then false
    else (
      Thread.delay 0.001;
      go ())
  in
  go ()

(* --- ringbuf ------------------------------------------------------------ *)

let ringbuf_tests =
  [
    test "fifo push/pop" (fun () ->
        let b = Ringbuf.create () in
        List.iter (Ringbuf.push b) [ 1; 2; 3 ];
        Alcotest.(check (list int)) "to_list front-to-back" [ 1; 2; 3 ]
          (Ringbuf.to_list b);
        Alcotest.(check int) "pop oldest" 1 (Ringbuf.pop b);
        Ringbuf.push b 4;
        Alcotest.(check (list int)) "order kept" [ 2; 3; 4 ]
          (Ringbuf.to_list b));
    test "take_at swaps the front into the hole" (fun () ->
        let b = Ringbuf.create () in
        List.iter (Ringbuf.push b) [ 0; 1; 2; 3; 4; 5 ];
        Alcotest.(check int) "take_at returns the i-th oldest" 3
          (Ringbuf.take_at b 3);
        (* O(1) removal: the front (0) now sits where 3 was *)
        Alcotest.(check (list int)) "front swapped in" [ 1; 2; 0; 4; 5 ]
          (Ringbuf.to_list b);
        Alcotest.(check int) "take_at 0 = pop" 1 (Ringbuf.take_at b 0);
        Alcotest.(check int) "length tracks" 4 (Ringbuf.length b));
    test "wraparound and growth keep order" (fun () ->
        let b = Ringbuf.create () in
        (* force the head past the backing array's start, then grow *)
        for i = 0 to 9 do Ringbuf.push b i done;
        for _ = 0 to 6 do ignore (Ringbuf.pop b) done;
        for i = 10 to 39 do Ringbuf.push b i done;
        Alcotest.(check (list int)) "contiguous after wrap+grow"
          (List.init 33 (fun i -> i + 7))
          (Ringbuf.to_list b);
        Ringbuf.clear b;
        Alcotest.(check bool) "clear empties" true (Ringbuf.is_empty b));
  ]

(* a list model of Ringbuf, mirroring take_at's documented swap: the
   front element moves into the vacated slot, then the front advances *)
let model_take_at l i =
  if i = 0 then (List.hd l, List.tl l)
  else
    let x = List.nth l i in
    let rest = List.filteri (fun j _ -> j <> 0 && j <> i) l in
    (* re-insert the old front where x sat (now position i-1 of rest) *)
    let rec insert j = function
      | ys when j = i - 1 -> (List.hd l) :: ys
      | [] -> [ List.hd l ]
      | y :: ys -> y :: insert (j + 1) ys
    in
    (x, insert 0 rest)

type ringbuf_op = R_push of int | R_pop | R_take_at of int | R_clear

let ringbuf_op_pp = function
  | R_push x -> Fmt.str "push %d" x
  | R_pop -> "pop"
  | R_take_at i -> Fmt.str "take_at %d" i
  | R_clear -> "clear"

let ringbuf_property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "random push/pop/take_at/clear agree with the list model \
            (wraparound and growth included)"
         ~count:200
         (QCheck.make
            QCheck.Gen.(
              list_size (int_range 0 120)
                (let* tag = int_range 0 9 in
                 let* x = int_range 0 1_000 in
                 return
                   (match tag with
                   | 0 | 1 | 2 | 3 -> R_push x
                   | 4 | 5 | 6 -> R_pop
                   | 7 | 8 -> R_take_at x
                   | _ -> R_clear)))
            ~print:(fun ops ->
              String.concat "; " (List.map ringbuf_op_pp ops)))
         (fun ops ->
           let b = Ringbuf.create () in
           let model = ref [] in
           List.iter
             (fun op ->
               match op with
               | R_push x ->
                   Ringbuf.push b x;
                   model := !model @ [ x ]
               | R_pop ->
                   if !model = [] then (
                     match Ringbuf.pop b with
                     | exception Invalid_argument _ -> ()
                     | _ -> QCheck.Test.fail_report "pop on empty succeeded")
                   else begin
                     let got = Ringbuf.pop b in
                     if got <> List.hd !model then
                       QCheck.Test.fail_reportf "pop %d, model %d" got
                         (List.hd !model);
                     model := List.tl !model
                   end
               | R_take_at i ->
                   let len = List.length !model in
                   if len = 0 then ()
                   else begin
                     let i = i mod len in
                     let got = Ringbuf.take_at b i in
                     let want, model' = model_take_at !model i in
                     if got <> want then
                       QCheck.Test.fail_reportf "take_at %d: %d, model %d" i
                         got want;
                     model := model'
                   end
               | R_clear ->
                   Ringbuf.clear b;
                   model := [])
             ops;
           Ringbuf.to_list b = !model
           && Ringbuf.length b = List.length !model
           && Ringbuf.is_empty b = (!model = [])));
  ]

(* --- mailbox ------------------------------------------------------------ *)

let mailbox_tests =
  [
    test "fifo in the single-threaded case" (fun () ->
        let mb = Mailbox.create () in
        List.iter (Mailbox.push mb) [ 1; 2; 3 ];
        let pop1 = Mailbox.try_pop mb in
        let pop2 = Mailbox.try_pop mb in
        let pop3 = Mailbox.try_pop mb in
        let pop4 = Mailbox.try_pop mb in
        let pops = [ pop1; pop2; pop3; pop4 ] in
        Alcotest.(check (list (option int)))
          "popped in order"
          [ Some 1; Some 2; Some 3; None ]
          pops);
    test "exactly-once under contention" (fun () ->
        let mb = Mailbox.create () in
        let pushers = 4 and per_pusher = 250 in
        let threads =
          List.init pushers (fun i ->
              Thread.create
                (fun () ->
                  for j = 0 to per_pusher - 1 do
                    Mailbox.push mb ((i * per_pusher) + j)
                  done)
                ())
        in
        List.iter Thread.join threads;
        let seen = Hashtbl.create 64 in
        let rec drain () =
          match Mailbox.try_pop mb with
          | None -> ()
          | Some x ->
              Alcotest.(check bool)
                "no duplicate delivery" false (Hashtbl.mem seen x);
              Hashtbl.replace seen x ();
              drain ()
        in
        drain ();
        Alcotest.(check int)
          "every push delivered once" (pushers * per_pusher)
          (Hashtbl.length seen);
        Alcotest.(check int) "accounting agrees"
          (Mailbox.pushed mb) (Mailbox.popped mb));
    test "close wakes blocked poppers" (fun () ->
        let mb = Mailbox.create () in
        let got = ref (Some 99) in
        let t = Thread.create (fun () -> got := Mailbox.pop mb) () in
        Thread.delay 0.01;
        Mailbox.close mb;
        Thread.join t;
        Alcotest.(check (option int)) "pop returned None" None !got;
        Mailbox.push mb 1;
        Alcotest.(check (option int))
          "push after close is a no-op" None (Mailbox.try_pop mb));
    test "close wakes every blocked popper" (fun () ->
        let mb = Mailbox.create () in
        let done_ = Atomic.make 0 in
        let ts =
          List.init 4 (fun _ ->
              Thread.create
                (fun () ->
                  (match Mailbox.pop mb with
                  | None -> ()
                  | Some _ -> Alcotest.fail "popped from an empty closed box");
                  Atomic.incr done_)
                ())
        in
        Thread.delay 0.01;
        Mailbox.close mb;
        List.iter Thread.join ts;
        Alcotest.(check int) "all four poppers returned" 4 (Atomic.get done_));
    test "pop_batch drains oldest-first and concatenates in order" (fun () ->
        let mb = Mailbox.create () in
        for i = 1 to 100 do Mailbox.push mb i done;
        let rec batches acc =
          if Mailbox.length mb = 0 then List.rev acc
          else
            match Mailbox.pop_batch mb ~max:32 with
            | None -> List.rev acc
            | Some b ->
                Alcotest.(check bool) "batch bounded" true (List.length b <= 32);
                batches (List.rev_append b acc)
        in
        Alcotest.(check (list int)) "concatenation is 1..100"
          (List.init 100 (fun i -> i + 1))
          (batches []);
        Alcotest.(check bool) "pop_batch rejects max<1" true
          (match Mailbox.pop_batch mb ~max:0 with
          | exception Invalid_argument _ -> true
          | _ -> false));
    test "pop_batch returns None once closed, even mid-blocking" (fun () ->
        let mb = Mailbox.create () in
        let got = ref (Some [ 99 ]) in
        let t = Thread.create (fun () -> got := Mailbox.pop_batch mb ~max:8) () in
        Thread.delay 0.01;
        Mailbox.close mb;
        Thread.join t;
        Alcotest.(check bool) "blocked batch-popper got None" true (!got = None));
    (* regression: close used to clear the queue, losing accepted items.
       Drain-then-None: queued items stay poppable after close; only an
       empty closed mailbox reports end-of-stream. *)
    test "close is drain-then-None, not drop" (fun () ->
        let mb = Mailbox.create () in
        List.iter (Mailbox.push mb) [ 1; 2; 3 ];
        Mailbox.close mb;
        Alcotest.(check (list (option int)))
          "queued items survive the close, then None"
          [ Some 1; Some 2; Some 3; None; None ]
          (List.init 5 (fun _ -> Mailbox.pop mb)));
    test "pop_batch drains a closed mailbox before reporting None" (fun () ->
        let mb = Mailbox.create () in
        for i = 1 to 5 do Mailbox.push mb i done;
        Mailbox.close mb;
        Alcotest.(check bool)
          "whole backlog in one batch" true
          (Mailbox.pop_batch mb ~max:10 = Some [ 1; 2; 3; 4; 5 ]);
        Alcotest.(check bool)
          "then end-of-stream" true
          (Mailbox.pop_batch mb ~max:10 = None);
        Alcotest.(check (option int)) "try_pop agrees" None (Mailbox.try_pop mb));
  ]

(* --- transport ---------------------------------------------------------- *)

let query i = Regemu_netsim.Proto.Query { rid = i }

let transport_tests =
  [
    test "no loss: every send is delivered exactly once" (fun () ->
        let seen = Hashtbl.create 64 in
        let lock = Mutex.create () in
        let deliver (e : Transport.envelope) =
          Mutex.lock lock;
          let rid = Regemu_netsim.Proto.rid_of e.payload in
          Hashtbl.replace seen rid (1 + Option.value ~default:0 (Hashtbl.find_opt seen rid));
          Mutex.unlock lock
        in
        let tr =
          Transport.create
            { (Transport.default_config ~seed:7) with couriers = 3 }
            ~servers:1 ~deliver
        in
        Transport.start tr;
        let total = 500 in
        for i = 0 to total - 1 do
          Transport.send tr
            { Transport.src = 0; dest = To_server 0; payload = query i }
        done;
        Alcotest.(check bool)
          "all deliveries arrived" true
          (settle (fun () -> Transport.delivered tr) total);
        Transport.stop tr;
        Alcotest.(check int) "each rid seen" total (Hashtbl.length seen);
        Hashtbl.iter
          (fun _ c -> Alcotest.(check int) "exactly once" 1 c)
          seen);
    test "dup_prob=1 duplicates every send" (fun () ->
        let seen = Hashtbl.create 64 in
        let lock = Mutex.create () in
        let deliver (e : Transport.envelope) =
          Mutex.lock lock;
          let rid = Regemu_netsim.Proto.rid_of e.payload in
          Hashtbl.replace seen rid (1 + Option.value ~default:0 (Hashtbl.find_opt seen rid));
          Mutex.unlock lock
        in
        let tr =
          Transport.create
            { (Transport.default_config ~seed:11) with dup_prob = 1.0 }
            ~servers:1 ~deliver
        in
        Transport.start tr;
        let total = 100 in
        for i = 0 to total - 1 do
          Transport.send tr
            { Transport.src = 0; dest = To_server 0; payload = query i }
        done;
        Alcotest.(check bool)
          "both copies of everything arrived" true
          (settle (fun () -> Transport.delivered tr) (2 * total));
        Transport.stop tr;
        Hashtbl.iter
          (fun _ c -> Alcotest.(check int) "exactly twice" 2 c)
          seen;
        Alcotest.(check int) "duplications counted" total
          (Transport.duplicated tr));
    test "lane fault streams are deterministic under a fixed seed" (fun () ->
        (* run the same externally ordered traffic through two fabrics
           with the same seed: every per-rid delivery count and every
           fault counter must agree — each lane's RNG is a pure
           function of the seed and that lane's send order *)
        let one () =
          let seen = Hashtbl.create 64 in
          let lock = Mutex.create () in
          let deliver (e : Transport.envelope) =
            Mutex.lock lock;
            let rid = Regemu_netsim.Proto.rid_of e.payload in
            Hashtbl.replace seen rid
              (1 + Option.value ~default:0 (Hashtbl.find_opt seen rid));
            Mutex.unlock lock
          in
          let tr =
            Transport.create
              {
                (Transport.default_config ~seed:1234) with
                dup_prob = 0.3;
                drop_prob = 0.25;
                couriers = 2;
              }
              ~servers:2 ~deliver
          in
          Transport.start tr;
          for i = 0 to 399 do
            Transport.send tr
              {
                Transport.src = 0;
                dest = To_server (i mod 2);
                payload = query i;
              }
          done;
          (* [sent] counts accepted envelopes (duplicates in, drops
             out), so it is exactly the expected delivery count *)
          let expect = Transport.sent tr in
          Alcotest.(check bool) "all surviving envelopes delivered" true
            (settle (fun () -> Transport.delivered tr) expect);
          let counters =
            (Transport.sent tr, Transport.dropped tr, Transport.duplicated tr)
          in
          Transport.stop tr;
          let per_rid =
            List.sort compare
              (Hashtbl.fold (fun rid c acc -> (rid, c) :: acc) seen [])
          in
          (counters, per_rid)
        in
        let a = one () and b = one () in
        Alcotest.(check bool) "same counters" true (fst a = fst b);
        Alcotest.(check bool) "same per-rid delivery multiset" true
          (snd a = snd b);
        Alcotest.(check bool) "the fault stream actually fired" true
          (let _, dropped, dup = fst a in
           dropped > 0 && dup > 0));
    test "sharding preserves per-destination FIFO when reorder=false"
      (fun () ->
        let per_dest : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
        let lock = Mutex.create () in
        let deliver (e : Transport.envelope) =
          Mutex.lock lock;
          let key =
            match e.dest with
            | Transport.To_server s -> s
            | Transport.To_client c -> 100 + c
          in
          let l =
            match Hashtbl.find_opt per_dest key with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace per_dest key l;
                l
          in
          l := Regemu_netsim.Proto.rid_of e.payload :: !l;
          Mutex.unlock lock
        in
        let tr =
          Transport.create
            {
              (Transport.default_config ~seed:5) with
              reorder = false;
              couriers = 3;
            }
            ~servers:3 ~deliver
        in
        Transport.start tr;
        (* interleave traffic across the three server lanes and the
           client lane; each destination's stream must come out in its
           own send order even though the lanes race each other *)
        let total = 300 in
        for i = 0 to total - 1 do
          let dest =
            if i mod 4 = 3 then Transport.To_client (i mod 2)
            else Transport.To_server (i mod 4)
          in
          Transport.send tr { Transport.src = 0; dest; payload = query i }
        done;
        Alcotest.(check bool) "all delivered" true
          (settle (fun () -> Transport.delivered tr) total);
        Transport.stop tr;
        Alcotest.(check int) "four lanes" 4 (Transport.lanes tr);
        Hashtbl.iter
          (fun _ l ->
            let got = List.rev !l in
            Alcotest.(check (list int)) "per-destination send order"
              (List.sort compare got) got)
          per_dest);
  ]

(* --- histlog ------------------------------------------------------------- *)

let histlog_tests =
  [
    test "poll is a consistent incremental feed under live writers"
      (fun () ->
        let log = Histlog.create () in
        let nwriters = 4 and per = 300 in
        let ws =
          List.init nwriters (fun i ->
              Histlog.new_writer log ~client:(Id.Client.of_int i))
        in
        let stop = Atomic.make false in
        let writers =
          List.mapi
            (fun i w ->
              Thread.create
                (fun () ->
                  for j = 0 to per - 1 do
                    let v = Value.Str (Printf.sprintf "%d.%d" i j) in
                    let tk = Histlog.invoke w (Regemu_sim.Trace.H_write v) in
                    if j mod 7 = 0 then Thread.yield ();
                    Histlog.return tk v
                  done)
                ())
            ws
        in
        (* poll concurrently with cursors, checking the feed invariants:
           oldest-first, strictly increasing invoked_at per writer, and
           a completed cell always carries its result *)
        let cursors = Array.make nwriters 0 in
        let last_inv = Array.make nwriters 0 in
        while not (Atomic.get stop) do
          List.iteri
            (fun i w ->
              let cur = cursors.(i) in
              let fresh = ref 0 in
              let len =
                Histlog.poll w ~from:cur (fun cv ->
                    incr fresh;
                    Alcotest.(check bool) "invoked_at strictly increases" true
                      (cv.Histlog.v_invoked_at > last_inv.(i));
                    last_inv.(i) <- cv.Histlog.v_invoked_at;
                    match (cv.Histlog.v_returned_at, cv.Histlog.v_result) with
                    | Some _, None ->
                        Alcotest.fail "completed cell without a result"
                    | _ -> ())
              in
              Alcotest.(check int) "poll visits exactly the suffix" !fresh
                (len - cur);
              cursors.(i) <- len)
            ws;
          if List.for_all (fun l -> l >= per) (Array.to_list cursors) then
            Atomic.set stop true
          else Thread.yield ()
        done;
        List.iter Thread.join writers;
        Alcotest.(check int) "all ops complete"
          (nwriters * per)
          (Histlog.completed log);
        (* the final snapshot merges the shards into global real-time
           order with dense indexes *)
        let h = Histlog.snapshot log in
        Alcotest.(check int) "snapshot has everything" (nwriters * per)
          (List.length h);
        List.iteri
          (fun i (op : Regemu_history.History.op) ->
            Alcotest.(check int) "index is the rank" i op.index;
            if i > 0 then
              Alcotest.(check bool) "sorted by invocation" true
                ((List.nth h (i - 1)).Regemu_history.History.invoked_at
                < op.invoked_at))
          h);
    test "snapshot while writers are live is a per-client prefix" (fun () ->
        let log = Histlog.create () in
        let w = Histlog.new_writer log ~client:(Id.Client.of_int 0) in
        let n = 500 in
        let t =
          Thread.create
            (fun () ->
              for j = 0 to n - 1 do
                let v = Value.Str (string_of_int j) in
                let tk = Histlog.invoke w (Regemu_sim.Trace.H_write v) in
                Histlog.return tk v
              done)
            ()
        in
        (* snapshots race the writer: each must be internally consistent
           (completed ops have results; at most one pending op for a
           sequential client) *)
        for _ = 0 to 20 do
          let h = Histlog.snapshot log in
          let pending =
            List.filter
              (fun (op : Regemu_history.History.op) -> op.returned_at = None)
              h
          in
          Alcotest.(check bool) "at most one in-flight op" true
            (List.length pending <= 1);
          List.iter
            (fun (op : Regemu_history.History.op) ->
              match (op.returned_at, op.result) with
              | Some _, None -> Alcotest.fail "completed op lost its result"
              | _ -> ())
            h;
          Thread.yield ()
        done;
        Thread.join t;
        Alcotest.(check int) "final snapshot exact" n
          (List.length (Histlog.snapshot log)));
  ]

(* the merged-shards property: however client operations interleave,
   the snapshot is exactly the invocation-order sequence — same
   clients, same hops, same results, dense indexes.  The interleaving
   is randomized but applied deterministically, modelling each client
   as a well-formed sequential process (invoke, later return). *)
let histlog_property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "snapshot equals the merged per-client chunks under random \
            writer interleavings"
         ~count:150
         (QCheck.make
            QCheck.Gen.(
              let* k = int_range 1 4 in
              let* steps = list_size (int_range 0 150) (int_range 0 (k - 1)) in
              return (k, steps))
            ~print:(fun (k, steps) ->
              Fmt.str "%d writers, schedule %a" k
                Fmt.(Dump.list int)
                steps))
         (fun (k, steps) ->
           let log = Histlog.create () in
           let ws =
             Array.init k (fun i ->
                 Histlog.new_writer log ~client:(Id.Client.of_int i))
           in
           (* per-writer sequential state: at most one op in flight *)
           let pending = Array.make k None in
           let counts = Array.make k 0 in
           let expected = ref [] in
           (* (client, hop, result option), invocation order *)
           List.iter
             (fun w ->
               match pending.(w) with
               | None ->
                   let j = counts.(w) in
                   counts.(w) <- j + 1;
                   let hop =
                     if j mod 2 = 0 then
                       Regemu_sim.Trace.H_write
                         (Value.Str (Printf.sprintf "w%d-%d" w j))
                     else Regemu_sim.Trace.H_read
                   in
                   let tk = Histlog.invoke ws.(w) hop in
                   let cell = ref None in
                   expected := (w, hop, cell) :: !expected;
                   pending.(w) <- Some (tk, hop, cell)
               | Some (tk, hop, cell) ->
                   let v =
                     match hop with
                     | Regemu_sim.Trace.H_write v -> v
                     | Regemu_sim.Trace.H_read ->
                         Value.Str (Printf.sprintf "r%d" w)
                   in
                   Histlog.return tk v;
                   cell := Some v;
                   pending.(w) <- None)
             steps;
           let expected = List.rev !expected in
           let h = Histlog.snapshot log in
           List.length h = List.length expected
           && List.for_all2
                (fun (op : Regemu_history.History.op) (w, hop, cell) ->
                  Id.Client.to_int op.client = w
                  && op.hop = hop
                  && op.result = !cell
                  && (op.returned_at = None) = (!cell = None))
                h expected
           && (let idxs =
                 List.map
                   (fun (op : Regemu_history.History.op) -> op.index)
                   h
               in
               idxs = List.init (List.length h) Fun.id)));
  ]

(* --- live cluster runs -------------------------------------------------- *)

let check_clean what (r : Checker.result) =
  (match r.ws with
  | Regemu_history.Ws_check.Violated v ->
      Alcotest.failf "%s: WS-Regularity violated: %a" what
        Regemu_history.Ws_check.violation_pp v
  | Holds | Vacuous -> ());
  match r.atomic with
  | Some false -> Alcotest.failf "%s: final history not linearizable" what
  | Some true | None -> ()

let cluster_tests =
  [
    test "ABD smoke: concurrent clients, checker-clean" (fun () ->
        let o =
          Live_bench.run
            {
              (Live_bench.default_spec ~algo:Live_bench.Abd_wb ~chaos:false
                 ~seed:1 ())
              with k = 1; readers = 2; ops_per_client = 60;
            }
        in
        check_clean "abd-wb smoke" o.check;
        Alcotest.(check int) "every op completed" (3 * 60) o.ops;
        Alcotest.(check bool) "outcome is clean" true (Live_bench.clean o));
    test "algorithm 2 smoke: checker-clean" (fun () ->
        let o =
          Live_bench.run
            {
              (Live_bench.default_spec ~algo:Live_bench.Alg2 ~chaos:false
                 ~seed:2 ())
              with readers = 2; ops_per_client = 50;
            }
        in
        check_clean "alg2 smoke" o.check;
        Alcotest.(check int) "every op completed" (3 * 50) o.ops);
    test "deterministic crashes: ops complete with <= f down" (fun () ->
        let cfg = Cluster.default_config ~n:3 ~seed:3 in
        let cluster = Cluster.create cfg in
        let abd = Abd_live.create cluster ~f:1 () in
        let w = Cluster.new_client cluster in
        let r = Cluster.new_client cluster in
        Cluster.start cluster;
        let checker = Checker.spawn cluster () in
        Abd_live.write abd w (Value.Str "pre-crash");
        Cluster.crash cluster 0;
        (* quorum f+1 = 2 of the remaining servers: still wait-free *)
        for i = 1 to 20 do
          Abd_live.write abd w (Value.Str (Printf.sprintf "during-%d" i));
          ignore (Abd_live.read abd r)
        done;
        Alcotest.(check int) "one server down" 1 (Cluster.crashed_count cluster);
        Cluster.restart cluster 0;
        Cluster.crash cluster 2;
        for i = 1 to 20 do
          ignore (Abd_live.read abd r);
          Abd_live.write abd w (Value.Str (Printf.sprintf "after-%d" i))
        done;
        Alcotest.(check bool)
          "never more than f down" true
          (Cluster.crashed_count cluster <= 1);
        let res = Checker.stop checker in
        Cluster.shutdown cluster;
        check_clean "crash run" res;
        Alcotest.(check int) "all 81 ops completed" 81
          ((Cluster.stats cluster).Cluster.ops_completed));
    test "chaos run survives injected faults" (fun () ->
        let o =
          Live_bench.run
            {
              (Live_bench.default_spec ~algo:Live_bench.Abd ~chaos:true ~seed:4 ())
              with readers = 2; ops_per_client = 40;
            }
        in
        check_clean "abd chaos" o.check;
        Alcotest.(check int) "every op completed" (3 * 40) o.ops);
  ]

(* --- saturation bench / regemu-bench schema ------------------------------ *)

let bench_tests =
  [
    test "saturate point is clean and its document passes the schema check"
      (fun () ->
        let spec =
          Live_bench.saturate_spec ~algo:Live_bench.Abd ~clients:2
            ~ops_per_client:10 ~seed:5 ()
        in
        let o = Live_bench.run_median ~reps:2 spec in
        Alcotest.(check bool) "clean" true (Live_bench.clean o);
        let doc = Live_bench.saturate_json [ o ] in
        (match Live_bench.validate_bench_json doc with
        | Ok () -> ()
        | Error m -> Alcotest.failf "schema check failed: %s" m);
        (* the emitted names are the dashboard keys; keep them stable *)
        match doc with
        | Json.Obj kvs -> (
            match List.assoc "benchmarks" kvs with
            | Json.List [ Json.Obj b ] ->
                Alcotest.(check bool) "benchmark name" true
                  (List.assoc "name" b
                  = Json.Str "saturate/abd/threads/clients=2")
            | _ -> Alcotest.fail "expected one benchmark entry")
        | _ -> Alcotest.fail "expected an object");
    test "schema check rejects malformed documents" (fun () ->
        let reject doc =
          match Live_bench.validate_bench_json doc with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "malformed document accepted"
        in
        reject (Json.Obj [ ("schema", Json.Str "regemu-bench/2") ]);
        reject
          (Json.Obj
             [
               ("schema", Json.Str "regemu-bench/1");
               ("benchmarks", Json.Str "not-a-list");
             ]);
        reject
          (Json.Obj
             [
               ("schema", Json.Str "regemu-bench/1");
               ( "benchmarks",
                 Json.List
                   [ Json.Obj [ ("name", Json.Str "x") ] (* no measure *) ] );
             ]);
        reject
          (Json.Obj
             [
               ("schema", Json.Str "regemu-bench/1");
               ( "benchmarks",
                 Json.List
                   [
                     Json.Obj
                       [
                         ("name", Json.Str "x");
                         ("measure", Json.Str "throughput");
                         ("ns_per_run", Json.Str "fast");
                         ("r_square", Json.Null);
                       ];
                   ] );
             ]));
    test "saturate_spec rejects fewer than two clients" (fun () ->
        Alcotest.(check bool) "raises" true
          (match
             Live_bench.saturate_spec ~algo:Live_bench.Abd ~clients:1
               ~ops_per_client:10 ~seed:1 ()
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

let suites =
  [
    ("live.ringbuf", ringbuf_tests @ ringbuf_property_tests);
    ("live.mailbox", mailbox_tests);
    ("live.transport", transport_tests);
    ("live.histlog", histlog_tests @ histlog_property_tests);
    ("live.cluster", cluster_tests);
    ("live.bench", bench_tests);
  ]

(* Tests for the live cluster runtime: real threads, real faults,
   online checking. *)

open Regemu_objects
open Regemu_live

let test name f = Alcotest.test_case name `Quick f

(* wait for a counter to reach [target] (couriers are asynchronous) *)
let settle ?(deadline_s = 5.0) read target =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if read () >= target then true
    else if Unix.gettimeofday () -. t0 > deadline_s then false
    else (
      Thread.delay 0.001;
      go ())
  in
  go ()

(* --- mailbox ------------------------------------------------------------ *)

let mailbox_tests =
  [
    test "fifo in the single-threaded case" (fun () ->
        let mb = Mailbox.create () in
        List.iter (Mailbox.push mb) [ 1; 2; 3 ];
        let pop1 = Mailbox.try_pop mb in
        let pop2 = Mailbox.try_pop mb in
        let pop3 = Mailbox.try_pop mb in
        let pop4 = Mailbox.try_pop mb in
        let pops = [ pop1; pop2; pop3; pop4 ] in
        Alcotest.(check (list (option int)))
          "popped in order"
          [ Some 1; Some 2; Some 3; None ]
          pops);
    test "exactly-once under contention" (fun () ->
        let mb = Mailbox.create () in
        let pushers = 4 and per_pusher = 250 in
        let threads =
          List.init pushers (fun i ->
              Thread.create
                (fun () ->
                  for j = 0 to per_pusher - 1 do
                    Mailbox.push mb ((i * per_pusher) + j)
                  done)
                ())
        in
        List.iter Thread.join threads;
        let seen = Hashtbl.create 64 in
        let rec drain () =
          match Mailbox.try_pop mb with
          | None -> ()
          | Some x ->
              Alcotest.(check bool)
                "no duplicate delivery" false (Hashtbl.mem seen x);
              Hashtbl.replace seen x ();
              drain ()
        in
        drain ();
        Alcotest.(check int)
          "every push delivered once" (pushers * per_pusher)
          (Hashtbl.length seen);
        Alcotest.(check int) "accounting agrees"
          (Mailbox.pushed mb) (Mailbox.popped mb));
    test "close wakes blocked poppers" (fun () ->
        let mb = Mailbox.create () in
        let got = ref (Some 99) in
        let t = Thread.create (fun () -> got := Mailbox.pop mb) () in
        Thread.delay 0.01;
        Mailbox.close mb;
        Thread.join t;
        Alcotest.(check (option int)) "pop returned None" None !got;
        Mailbox.push mb 1;
        Alcotest.(check (option int))
          "push after close is a no-op" None (Mailbox.try_pop mb));
  ]

(* --- transport ---------------------------------------------------------- *)

let query i = Regemu_netsim.Proto.Query { rid = i }

let transport_tests =
  [
    test "no loss: every send is delivered exactly once" (fun () ->
        let seen = Hashtbl.create 64 in
        let lock = Mutex.create () in
        let deliver (e : Transport.envelope) =
          Mutex.lock lock;
          let rid = Regemu_netsim.Proto.rid_of e.payload in
          Hashtbl.replace seen rid (1 + Option.value ~default:0 (Hashtbl.find_opt seen rid));
          Mutex.unlock lock
        in
        let tr =
          Transport.create
            { (Transport.default_config ~seed:7) with couriers = 3 }
            ~deliver
        in
        Transport.start tr;
        let total = 500 in
        for i = 0 to total - 1 do
          Transport.send tr
            { Transport.src = 0; dest = To_server 0; payload = query i }
        done;
        Alcotest.(check bool)
          "all deliveries arrived" true
          (settle (fun () -> Transport.delivered tr) total);
        Transport.stop tr;
        Alcotest.(check int) "each rid seen" total (Hashtbl.length seen);
        Hashtbl.iter
          (fun _ c -> Alcotest.(check int) "exactly once" 1 c)
          seen);
    test "dup_prob=1 duplicates every send" (fun () ->
        let seen = Hashtbl.create 64 in
        let lock = Mutex.create () in
        let deliver (e : Transport.envelope) =
          Mutex.lock lock;
          let rid = Regemu_netsim.Proto.rid_of e.payload in
          Hashtbl.replace seen rid (1 + Option.value ~default:0 (Hashtbl.find_opt seen rid));
          Mutex.unlock lock
        in
        let tr =
          Transport.create
            { (Transport.default_config ~seed:11) with dup_prob = 1.0 }
            ~deliver
        in
        Transport.start tr;
        let total = 100 in
        for i = 0 to total - 1 do
          Transport.send tr
            { Transport.src = 0; dest = To_server 0; payload = query i }
        done;
        Alcotest.(check bool)
          "both copies of everything arrived" true
          (settle (fun () -> Transport.delivered tr) (2 * total));
        Transport.stop tr;
        Hashtbl.iter
          (fun _ c -> Alcotest.(check int) "exactly twice" 2 c)
          seen;
        Alcotest.(check int) "duplications counted" total
          (Transport.duplicated tr));
  ]

(* --- live cluster runs -------------------------------------------------- *)

let check_clean what (r : Checker.result) =
  (match r.ws with
  | Regemu_history.Ws_check.Violated v ->
      Alcotest.failf "%s: WS-Regularity violated: %a" what
        Regemu_history.Ws_check.violation_pp v
  | Holds | Vacuous -> ());
  match r.atomic with
  | Some false -> Alcotest.failf "%s: final history not linearizable" what
  | Some true | None -> ()

let cluster_tests =
  [
    test "ABD smoke: concurrent clients, checker-clean" (fun () ->
        let o =
          Live_bench.run
            {
              (Live_bench.default_spec ~algo:Live_bench.Abd_wb ~chaos:false
                 ~seed:1)
              with k = 1; readers = 2; ops_per_client = 60;
            }
        in
        check_clean "abd-wb smoke" o.check;
        Alcotest.(check int) "every op completed" (3 * 60) o.ops;
        Alcotest.(check bool) "outcome is clean" true (Live_bench.clean o));
    test "algorithm 2 smoke: checker-clean" (fun () ->
        let o =
          Live_bench.run
            {
              (Live_bench.default_spec ~algo:Live_bench.Alg2 ~chaos:false
                 ~seed:2)
              with readers = 2; ops_per_client = 50;
            }
        in
        check_clean "alg2 smoke" o.check;
        Alcotest.(check int) "every op completed" (3 * 50) o.ops);
    test "deterministic crashes: ops complete with <= f down" (fun () ->
        let cfg = Cluster.default_config ~n:3 ~seed:3 in
        let cluster = Cluster.create cfg in
        let abd = Abd_live.create cluster ~f:1 () in
        let w = Cluster.new_client cluster in
        let r = Cluster.new_client cluster in
        Cluster.start cluster;
        let checker = Checker.spawn cluster () in
        Abd_live.write abd w (Value.Str "pre-crash");
        Cluster.crash cluster 0;
        (* quorum f+1 = 2 of the remaining servers: still wait-free *)
        for i = 1 to 20 do
          Abd_live.write abd w (Value.Str (Printf.sprintf "during-%d" i));
          ignore (Abd_live.read abd r)
        done;
        Alcotest.(check int) "one server down" 1 (Cluster.crashed_count cluster);
        Cluster.restart cluster 0;
        Cluster.crash cluster 2;
        for i = 1 to 20 do
          ignore (Abd_live.read abd r);
          Abd_live.write abd w (Value.Str (Printf.sprintf "after-%d" i))
        done;
        Alcotest.(check bool)
          "never more than f down" true
          (Cluster.crashed_count cluster <= 1);
        let res = Checker.stop checker in
        Cluster.shutdown cluster;
        check_clean "crash run" res;
        Alcotest.(check int) "all 81 ops completed" 81
          ((Cluster.stats cluster).Cluster.ops_completed));
    test "chaos run survives injected faults" (fun () ->
        let o =
          Live_bench.run
            {
              (Live_bench.default_spec ~algo:Live_bench.Abd ~chaos:true ~seed:4)
              with readers = 2; ops_per_client = 40;
            }
        in
        check_clean "abd chaos" o.check;
        Alcotest.(check int) "every op completed" (3 * 40) o.ops);
  ]

let suites =
  [
    ("live.mailbox", mailbox_tests);
    ("live.transport", transport_tests);
    ("live.cluster", cluster_tests);
  ]

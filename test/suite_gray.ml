(* Tests for the gray-failure surface: the adaptive deadline
   estimator, the hedge policy, the transport's slow/freeze controls,
   the seeded gray injector modes, hedged quorum rounds end to end,
   and the keyed retry path.  Determinism of hedge decisions under the
   virtual scheduler lives in suite_dst. *)

open Regemu_objects
open Regemu_live

let test name f = Alcotest.test_case name `Quick f

let expect_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

(* wait for a counter to reach [target] (couriers are asynchronous) *)
let settle ?(deadline_s = 5.0) read target =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if read () >= target then true
    else if Unix.gettimeofday () -. t0 > deadline_s then false
    else (
      Thread.delay 0.001;
      go ())
  in
  go ()

(* --- the deadline estimator ---------------------------------------------- *)

(* a config whose clamp never masks the latency signal, so the
   properties below see the raw estimator *)
let open_cfg =
  {
    Deadline.window = 16;
    quantile = 0.95;
    ewma_alpha = 0.5;
    mult = 2.0;
    min_s = 1e-6;
    max_s = 10.0;
  }

let feed t = List.iter (Deadline.observe t)

(* sample lists: 1..80 latencies in [0, 500] ms *)
let arb_samples =
  QCheck.make
    ~print:(fun l -> Fmt.str "%a" Fmt.(Dump.list float) l)
    QCheck.Gen.(
      list_size (1 -- 80)
        (map (fun i -> float_of_int i /. 1000.0) (0 -- 500)))

(* two latency levels, the second strictly higher *)
let arb_shift =
  QCheck.make
    ~print:(fun (a, b) -> Fmt.str "%.3fs -> %.3fs" a b)
    QCheck.Gen.(
      let* lo = 1 -- 400 in
      let* d = 1 -- 400 in
      return (float_of_int lo /. 1000.0, float_of_int (lo + d) /. 1000.0))

let prop name arb p =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:200 arb p)

let deadline_tests =
  [
    test "no samples: estimate is the clamp ceiling" (fun () ->
        let t = Deadline.create Deadline.default_config in
        Alcotest.(check int) "no samples" 0 (Deadline.samples t);
        Alcotest.(check (float 0.0)) "ewma 0" 0.0 (Deadline.ewma t);
        Alcotest.(check (float 0.0)) "latency 0" 0.0 (Deadline.latency_s t);
        Alcotest.(check (float 0.0))
          "estimate = max_s" Deadline.default_config.Deadline.max_s
          (Deadline.estimate_s t));
    test "negative samples clip to zero" (fun () ->
        let t = Deadline.create open_cfg in
        Deadline.observe t (-5.0);
        Alcotest.(check int) "one sample" 1 (Deadline.samples t);
        Alcotest.(check (float 0.0)) "latency 0" 0.0 (Deadline.latency_s t);
        Alcotest.(check (float 0.0))
          "estimate clamps up to min_s" open_cfg.Deadline.min_s
          (Deadline.estimate_s t));
    test "config is validated" (fun () ->
        let base = Deadline.default_config in
        expect_invalid "window 0" (fun () ->
            Deadline.create { base with Deadline.window = 0 });
        expect_invalid "quantile 1.5" (fun () ->
            Deadline.create { base with Deadline.quantile = 1.5 });
        expect_invalid "alpha 0" (fun () ->
            Deadline.create { base with Deadline.ewma_alpha = 0.0 });
        expect_invalid "mult 0" (fun () ->
            Deadline.create { base with Deadline.mult = 0.0 });
        expect_invalid "min > max" (fun () ->
            Deadline.create { base with Deadline.min_s = 20.0 }));
    prop "the estimator is a pure fold over its samples" arb_samples
      (fun samples ->
        let a = Deadline.create open_cfg and b = Deadline.create open_cfg in
        feed a samples;
        feed b samples;
        Deadline.samples a = Deadline.samples b
        && Deadline.ewma a = Deadline.ewma b
        && Deadline.quantile a = Deadline.quantile b
        && Deadline.estimate_s a = Deadline.estimate_s b);
    prop "estimates stay inside the clamp" arb_samples (fun samples ->
        let t = Deadline.create Deadline.default_config in
        List.for_all
          (fun s ->
            Deadline.observe t s;
            let e = Deadline.estimate_s t in
            e >= Deadline.default_config.Deadline.min_s
            && e <= Deadline.default_config.Deadline.max_s)
          samples);
    prop "a level shift up strictly raises the estimate" arb_shift
      (fun (lo, hi) ->
        let t = Deadline.create open_cfg in
        feed t (List.init open_cfg.Deadline.window (fun _ -> lo));
        let before = Deadline.estimate_s t in
        feed t (List.init open_cfg.Deadline.window (fun _ -> hi));
        (* the window is now entirely at the new level: the quantile
           sits exactly at [hi] and the EWMA approaches it from below,
           so the estimate is exactly [mult * hi] *)
        Deadline.estimate_s t > before
        && Float.abs (Deadline.estimate_s t -. (open_cfg.Deadline.mult *. hi))
           < 1e-9);
    prop "a steady level is learned exactly" arb_samples (fun samples ->
        match samples with
        | [] -> true
        | s :: _ ->
            let t = Deadline.create open_cfg in
            feed t (List.init (2 * open_cfg.Deadline.window) (fun _ -> s));
            Float.abs (Deadline.latency_s t -. s) <= 1e-9 +. (s *. 1e-6));
  ]

(* --- the hedge policy ----------------------------------------------------- *)

let arb_select =
  QCheck.make
    ~print:(fun (n, quorum, spares, rot) ->
      Fmt.str "n=%d quorum=%d spares=%d rot=%d" n quorum spares rot)
    QCheck.Gen.(
      let* n = 1 -- 9 in
      let* quorum = 1 -- n in
      let* spares = 0 -- 3 in
      let* rot = 0 -- 30 in
      return (n, quorum, spares, rot))

let hedge_tests =
  [
    test "cold rounds hedge at the floor" (fun () ->
        let cfg = Hedge.default_config in
        Alcotest.(check (float 0.0))
          "no evidence -> min delay" cfg.Hedge.min_delay_s
          (Hedge.delay_s cfg ~latency_s:0.0));
    test "the delay tracks the latency level, clamped" (fun () ->
        let cfg = Hedge.default_config in
        Alcotest.(check (float 1e-9))
          "3x a 2ms level" 0.006
          (Hedge.delay_s cfg ~latency_s:0.002);
        Alcotest.(check (float 0.0))
          "ceiling" cfg.Hedge.max_delay_s
          (Hedge.delay_s cfg ~latency_s:10.0);
        Alcotest.(check (float 0.0))
          "floor" cfg.Hedge.min_delay_s
          (Hedge.delay_s cfg ~latency_s:1e-9));
    test "config is validated" (fun () ->
        let base = Hedge.default_config in
        expect_invalid "spares -1" (fun () ->
            Hedge.validate_config { base with Hedge.spares = -1 });
        expect_invalid "delay_mult 0" (fun () ->
            Hedge.validate_config { base with Hedge.delay_mult = 0.0 });
        expect_invalid "max < min" (fun () ->
            Hedge.validate_config { base with Hedge.max_delay_s = 1e-6 });
        expect_invalid "tick 0" (fun () ->
            Hedge.validate_config { base with Hedge.tick_s = 0.0 }));
    test "the slowest replica is deferred" (fun () ->
        let health s = if s = 1 then 0.5 else 0.0 in
        let initial, deferred =
          Hedge.select Hedge.default_config ~rot:0 ~health ~quorum:2
            [ 0; 1; 2 ]
        in
        Alcotest.(check (list int)) "healthy pair first" [ 0; 2 ] initial;
        Alcotest.(check (list int)) "straggler deferred" [ 1 ] deferred);
    test "equal health spreads load by rotation" (fun () ->
        let health _ = 0.0 in
        let initial, deferred =
          Hedge.select Hedge.default_config ~rot:1 ~health ~quorum:2
            [ 0; 1; 2 ]
        in
        Alcotest.(check (list int)) "rotated quorum" [ 1; 2 ] initial;
        Alcotest.(check (list int)) "rotated tail" [ 0 ] deferred);
    test "empty replica lists are fine" (fun () ->
        Alcotest.(check bool)
          "([], [])" true
          (Hedge.select Hedge.default_config ~rot:3 ~health:(fun _ -> 0.0)
             ~quorum:2 []
           = ([], [])));
    prop "select is a partition of its input" arb_select
      (fun (n, quorum, spares, rot) ->
        let cfg = { Hedge.default_config with Hedge.spares } in
        let replicas = List.init n (fun i -> i) in
        let health s = float_of_int (s mod 3) /. 10.0 in
        let initial, deferred =
          Hedge.select cfg ~rot ~health ~quorum replicas
        in
        List.length initial = min n (quorum + spares)
        && List.sort compare (initial @ deferred) = replicas);
  ]

(* --- transport gray controls ---------------------------------------------- *)

let query i = Regemu_netsim.Proto.Query { rid = i }

let mk_transport ?(seed = 71) ?(couriers = 2) ~servers deliver =
  let tr =
    Transport.create
      { (Transport.default_config ~seed) with couriers }
      ~servers ~deliver
  in
  Transport.start tr;
  tr

let transport_gray_tests =
  [
    test "set_slow round-trips and validates" (fun () ->
        let tr = mk_transport ~servers:3 ignore in
        Alcotest.(check int) "initially clear" 0 (Transport.slow_us tr ~server:1);
        Transport.set_slow tr ~server:1 4000;
        Alcotest.(check int) "installed" 4000 (Transport.slow_us tr ~server:1);
        Alcotest.(check int) "others untouched" 0
          (Transport.slow_us tr ~server:0);
        Transport.set_slow tr ~server:1 0;
        Alcotest.(check int) "healed" 0 (Transport.slow_us tr ~server:1);
        expect_invalid "negative delay" (fun () ->
            Transport.set_slow tr ~server:1 (-1));
        expect_invalid "server out of range" (fun () ->
            Transport.set_slow tr ~server:3 1000);
        Transport.stop tr);
    test "a slow link holds envelopes and counts them" (fun () ->
        let delivered = Atomic.make 0 in
        let tr =
          mk_transport ~servers:1 (fun _ -> Atomic.incr delivered)
        in
        Transport.set_slow tr ~server:0 2000;
        let total = 20 in
        for i = 0 to total - 1 do
          Transport.send tr
            { Transport.src = 0; dest = To_server 0; payload = query i }
        done;
        Alcotest.(check bool)
          "all delivered despite the slow link" true
          (settle (fun () -> Atomic.get delivered) total);
        Alcotest.(check int) "every envelope was held" total
          (Transport.slowed tr);
        Transport.stop tr);
    test "freeze queues requests, thaw releases the backlog" (fun () ->
        let delivered = Atomic.make 0 in
        let tr =
          mk_transport ~servers:2 (fun _ -> Atomic.incr delivered)
        in
        Transport.freeze tr ~server:0;
        Alcotest.(check bool) "frozen" true (Transport.frozen tr ~server:0);
        Alcotest.(check bool)
          "other lanes unaffected" false
          (Transport.frozen tr ~server:1);
        for i = 0 to 9 do
          Transport.send tr
            { Transport.src = 0; dest = To_server 0; payload = query i }
        done;
        Thread.delay 0.05;
        Alcotest.(check int) "nothing drains while frozen" 0
          (Atomic.get delivered);
        Transport.thaw tr ~server:0;
        Alcotest.(check bool)
          "backlog delivered after thaw" true
          (settle (fun () -> Atomic.get delivered) 10);
        Alcotest.(check bool) "thawed" false (Transport.frozen tr ~server:0);
        Transport.stop tr);
    test "heal_gray clears every slow link and frozen lane" (fun () ->
        let tr = mk_transport ~servers:3 ignore in
        Transport.set_slow tr ~server:0 1000;
        Transport.set_slow tr ~server:2 9000;
        Transport.freeze tr ~server:1;
        Transport.heal_gray tr;
        for s = 0 to 2 do
          Alcotest.(check int)
            (Fmt.str "server %d link clear" s)
            0
            (Transport.slow_us tr ~server:s);
          Alcotest.(check bool)
            (Fmt.str "server %d lane thawed" s)
            false
            (Transport.frozen tr ~server:s)
        done;
        Transport.stop tr);
  ]

(* --- the seeded gray injector --------------------------------------------- *)

let quick_retry =
  { Retry.base_s = 0.02; cap_s = 0.15; deadline_s = 8.0; grace_s = 0.1 }

let mk_cluster ?(hedge = None) ?(deadline = None) ~seed () =
  Cluster.create
    {
      Cluster.n = 3;
      transport =
        {
          Transport.couriers = 2;
          delay_prob = 0.0;
          max_delay_us = 0;
          dup_prob = 0.0;
          drop_prob = 0.0;
          reorder = true;
          sharded = true;
          backend = Transport.Threads;
          seed;
        };
      op_timeout_s = 20.0;
      recovery = Recovery.Persist;
      retry = Some quick_retry;
      hedge;
      deadline;
    }

(* spawn a crash-quiet injector running only the gray loop, wait for
   [steps] gray actions, and hand the live cluster to [observe] *)
let with_gray ~seed ~gray ~steps observe =
  let cluster = mk_cluster ~seed () in
  Cluster.start cluster;
  let inj =
    Fault.spawn cluster
      {
        (Fault.default_config ~f:1 ~pool:3 ~seed) with
        Fault.period_s = 60.0 (* no crash/restart churn during the test *);
        gray = Some gray;
        gray_period_s = 0.003;
      }
  in
  Alcotest.(check bool)
    "gray actions applied" true
    (settle (fun () -> Fault.grays inj) steps);
  let r = observe cluster in
  Fault.stop inj;
  (* stop clears every gray fault *)
  for s = 0 to 2 do
    Alcotest.(check int)
      (Fmt.str "server %d healed on stop" s)
      0
      (Cluster.slow_us cluster ~server:s);
    Alcotest.(check bool)
      (Fmt.str "server %d thawed on stop" s)
      false (Cluster.frozen cluster ~server:s)
  done;
  Cluster.shutdown cluster;
  r

let slowed_servers cluster =
  List.filter
    (fun s -> Cluster.slow_us cluster ~server:s > 0)
    [ 0; 1; 2 ]

let fault_gray_tests =
  [
    test "gray configs are validated" (fun () ->
        let cluster = mk_cluster ~seed:80 () in
        let base = Fault.default_config ~f:1 ~pool:3 ~seed:80 in
        expect_invalid "gray_period_s 0" (fun () ->
            Fault.spawn cluster
              { base with Fault.gray = Some (Fault.Straggler 1000);
                gray_period_s = 0.0 });
        expect_invalid "negative slowdown" (fun () ->
            Fault.spawn cluster
              { base with Fault.gray = Some (Fault.Straggler (-1)) });
        expect_invalid "creep step 0" (fun () ->
            Fault.spawn cluster
              { base with
                Fault.gray = Some (Fault.Creep { step_us = 0; max_us = 100 })
              });
        expect_invalid "creep step > max" (fun () ->
            Fault.spawn cluster
              { base with
                Fault.gray = Some (Fault.Creep { step_us = 200; max_us = 100 })
              });
        Cluster.shutdown cluster);
    test "straggler mode slows one seeded server, fixed for the run"
      (fun () ->
        let victim ~seed =
          with_gray ~seed ~gray:(Fault.Straggler 3000) ~steps:3
            (fun cluster ->
              match slowed_servers cluster with
              | [ s ] ->
                  Alcotest.(check int)
                    "the configured slowdown" 3000
                    (Cluster.slow_us cluster ~server:s);
                  s
              | l ->
                  Alcotest.failf "expected one straggler, found %d"
                    (List.length l))
        in
        Alcotest.(check int)
          "the victim replays from the seed" (victim ~seed:81)
          (victim ~seed:81));
    test "creep mode degrades stepwise up to its cap" (fun () ->
        with_gray ~seed:83
          ~gray:(Fault.Creep { step_us = 500; max_us = 1500 })
          ~steps:5
          (fun cluster ->
            match slowed_servers cluster with
            | [ s ] ->
                let us = Cluster.slow_us cluster ~server:s in
                Alcotest.(check bool)
                  (Fmt.str "0 < %d <= max" us)
                  true
                  (us > 0 && us <= 1500);
                Alcotest.(check int)
                  "a whole number of steps" 0 (us mod 500)
            | l ->
                Alcotest.failf "expected one creeping server, found %d"
                  (List.length l)));
    test "stutter mode freezes and always thaws" (fun () ->
        (* sampling mid-run races the freeze/thaw alternation, so only
           the invariants are checked: actions fire, and stop leaves
           nothing frozen (asserted by with_gray itself) *)
        with_gray ~seed:84 ~gray:Fault.Stutter ~steps:4 (fun _ -> ()));
  ]

(* --- hedged quorum rounds end to end --------------------------------------- *)

let check_clean what (r : Checker.result) =
  match r.ws with
  | Regemu_history.Ws_check.Violated v ->
      Alcotest.failf "%s: WS-Regularity violated: %a" what
        Regemu_history.Ws_check.violation_pp v
  | Holds | Vacuous -> ()

let hedged_run_tests =
  [
    test "hedges fire against a straggler and the history stays clean"
      (fun () ->
        let cluster =
          mk_cluster ~seed:90
            ~hedge:(Some Hedge.default_config)
            ~deadline:(Some Deadline.default_config)
            ()
        in
        let abd = Abd_live.create cluster ~f:1 () in
        let w = Cluster.new_client cluster in
        let r = Cluster.new_client cluster in
        Cluster.start cluster;
        let checker = Checker.spawn cluster () in
        Cluster.set_slow cluster ~server:2 8000;
        for i = 1 to 25 do
          Abd_live.write abd w (Value.Str (Printf.sprintf "gray-%d" i));
          ignore (Abd_live.read abd r)
        done;
        let res = Checker.stop checker in
        let stats = Cluster.stats cluster in
        Cluster.shutdown cluster;
        check_clean "hedged straggler run" res;
        Alcotest.(check int) "every op completed" 50
          stats.Cluster.ops_completed;
        Alcotest.(check bool) "the straggler held messages" true
          (stats.Cluster.msgs_slowed > 0);
        Alcotest.(check bool) "hedges fired" true (stats.Cluster.hedges > 0));
    test "hedging off is the old broadcast behaviour" (fun () ->
        let cluster = mk_cluster ~seed:91 () in
        let abd = Abd_live.create cluster ~f:1 () in
        let w = Cluster.new_client cluster in
        Cluster.start cluster;
        let checker = Checker.spawn cluster () in
        for i = 1 to 10 do
          Abd_live.write abd w (Value.Str (Printf.sprintf "plain-%d" i))
        done;
        let res = Checker.stop checker in
        let stats = Cluster.stats cluster in
        Cluster.shutdown cluster;
        check_clean "unhedged run" res;
        Alcotest.(check int) "no hedges" 0 stats.Cluster.hedges;
        Alcotest.(check int) "no wins" 0 stats.Cluster.hedge_wins);
  ]

(* --- the keyed retry path -------------------------------------------------- *)

let keyed_retry_tests =
  [
    test "a dropped keyed round is retransmitted to completion" (fun () ->
        let open Regemu_keyspace in
        let cluster = mk_cluster ~seed:95 () in
        let ks = Kspace.create cluster ~f:1 () in
        let w = Kspace.new_worker ks in
        Cluster.start cluster;
        Kspace.write ks w ~key:3 (Value.Str "before-loss");
        Cluster.set_drop cluster ~requests:1.0 ();
        let finished = Atomic.make false in
        let t =
          Thread.create
            (fun () ->
              Kspace.write ks w ~key:3 (Value.Str "through-loss");
              Atomic.set finished true)
            ()
        in
        Thread.delay 0.15;
        Alcotest.(check bool)
          "keyed op still blocked under total loss" false
          (Atomic.get finished);
        Cluster.set_drop cluster ~requests:0.0 ();
        Thread.join t;
        Alcotest.(check bool)
          "keyed op completed once loss healed" true (Atomic.get finished);
        Alcotest.(check bool)
          "the written value is readable" true
          (Value.equal (Kspace.read ks w ~key:3) (Value.Str "through-loss"));
        let stats = Cluster.stats cluster in
        Cluster.shutdown cluster;
        Alcotest.(check bool) "requests were dropped" true
          (stats.Cluster.msgs_dropped > 0);
        Alcotest.(check bool) "the keyed client retransmitted" true
          (stats.Cluster.retries > 0));
  ]

let suites =
  [
    ("gray.deadline", deadline_tests);
    ("gray.hedge", hedge_tests);
    ("gray.transport", transport_gray_tests);
    ("gray.fault", fault_gray_tests);
    ("gray.hedged-runs", hedged_run_tests);
    ("gray.keyed-retry", keyed_retry_tests);
  ]

(* Tests for Algorithm 2 over network-attached register cells, and the
   wire-level replay of the Figure 2 violation: a slow datagram is a
   covering write. *)

open Regemu_bounds
open Regemu_objects
open Regemu_history
open Regemu_netsim

let test name f = Alcotest.test_case name `Quick f

let drive net rng ~budget ~goal =
  let rec go budget =
    if goal () then true
    else if budget = 0 then false
    else
      match Net.enabled net with
      | [] -> goal ()
      | evs ->
          Net.fire net (Regemu_sim.Rng.pick rng evs);
          go (budget - 1)
  in
  go budget

let finish net rng call =
  if
    not
      (drive net rng ~budget:100_000 ~goal:(fun () -> Net.call_returned call))
  then Alcotest.fail "operation did not return";
  Option.get (Net.call_result call)

let setup ?naive ~k ~f ~n () =
  let p = Params.make_exn ~k ~f ~n in
  let net = Net.create ~n () in
  let writers = List.init k (fun _ -> Net.new_client net) in
  let t = Alg2_net.create net p ?naive ~writers () in
  (p, net, t, writers)

let basic_tests =
  [
    test "allocates exactly the upper-bound number of cells" (fun () ->
        List.iter
          (fun (k, f, n) ->
            let p, _, t, _ = setup ~k ~f ~n () in
            Alcotest.(check int)
              (Fmt.str "%a" Params.pp p)
              (Formulas.register_upper_bound p)
              (Alg2_net.cells t))
          [ (1, 1, 3); (3, 1, 3); (5, 2, 6); (4, 2, 12) ]);
    test "naive mode allocates 2f+1 cells" (fun () ->
        let _, _, t, _ = setup ~naive:true ~k:2 ~f:2 ~n:5 () in
        Alcotest.(check int) "cells" 5 (Alg2_net.cells t));
    test "sequential write then read over the wire" (fun () ->
        let _, net, t, writers = setup ~k:2 ~f:1 ~n:4 () in
        let reader = Net.new_client net in
        let rng = Regemu_sim.Rng.create 9 in
        ignore (finish net rng (Alg2_net.write t (List.nth writers 0) (Value.Str "a")));
        ignore (finish net rng (Alg2_net.write t (List.nth writers 1) (Value.Str "b")));
        let v = finish net rng (Alg2_net.read t reader) in
        Alcotest.(check bool) "b" true (Value.equal v (Value.Str "b")));
    test "tolerates f crashed servers" (fun () ->
        let _, net, t, writers = setup ~k:1 ~f:2 ~n:6 () in
        let reader = Net.new_client net in
        let rng = Regemu_sim.Rng.create 4 in
        Net.crash_server net (Id.Server.of_int 1);
        Net.crash_server net (Id.Server.of_int 4);
        ignore (finish net rng (Alg2_net.write t (List.hd writers) (Value.Str "x")));
        let v = finish net rng (Alg2_net.read t reader) in
        Alcotest.(check bool) "x" true (Value.equal v (Value.Str "x")));
    test "unregistered writer rejected" (fun () ->
        let _, net, t, _ = setup ~k:1 ~f:1 ~n:3 () in
        let stranger = Net.new_client net in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (Alg2_net.write t stranger (Value.Int 1));
             false
           with Invalid_argument _ -> true));
  ]

(* --- randomized safety ----------------------------------------------------- *)

let random_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"wire-level algorithm2 is WS-Safe over random deliveries"
         ~count:50
         (QCheck.make QCheck.Gen.(int_range 0 1_000_000) ~print:string_of_int)
         (fun seed ->
           let _, net, t, writers = setup ~k:2 ~f:1 ~n:4 () in
           let reader = Net.new_client net in
           let rng = Regemu_sim.Rng.create seed in
           List.iteri
             (fun i w ->
               ignore (finish net rng (Alg2_net.write t w (Value.Int i)));
               ignore (finish net rng (Alg2_net.read t reader)))
             (writers @ writers);
           Ws_check.is_ws_safe (Net.history net)));
  ]

(* --- the Figure 2 violation on the wire ------------------------------------- *)

(* scripted delivery helpers *)
let deliver_where net ~what pred =
  match
    List.find_opt (fun (_, dest, payload) -> pred dest payload) (Net.flight net)
  with
  | Some (mid, _, _) -> Net.fire net (Net.Deliver mid)
  | None -> Alcotest.failf "%s: no matching in-flight message" what

let rec deliver_all_where net pred =
  match
    List.find_opt (fun (_, dest, payload) -> pred dest payload) (Net.flight net)
  with
  | Some (mid, _, _) ->
      Net.fire net (Net.Deliver mid);
      deliver_all_where net pred
  | None -> ()

let is_read_traffic _dest = function
  | Net.Reg_read _ | Net.Reg_read_reply _ -> true
  | _ -> false

let is_write_ack _dest = function Net.Reg_write_reply _ -> true | _ -> false

let to_server s dest =
  match dest with Net.To_server s' -> Id.Server.equal s' s | _ -> false

let step_client net c =
  match
    List.find_opt
      (function Net.Step c' -> Id.Client.equal c c' | _ -> false)
      (Net.enabled net)
  with
  | Some ev -> Net.fire net ev
  | None -> Alcotest.fail "client not steppable"

let rec settle_reads net =
  (* deliver all register reads and their replies *)
  if
    List.exists
      (fun (_, d, p) -> is_read_traffic d p)
      (Net.flight net)
  then begin
    deliver_all_where net (fun d p -> is_read_traffic d p);
    settle_reads net
  end

let violation_tests =
  [
    test "a slow datagram reproduces the Figure 2 violation (naive mode)"
      (fun () ->
        let s i = Id.Server.of_int i in
        let write_of payload_str d p =
          match p with
          | Net.Reg_write { proposed; _ } ->
              Value.equal (Value.payload proposed) (Value.Str payload_str)
              && (match d with Net.To_server _ -> true | _ -> false)
          | _ -> false
        in

        let _, net, t, writers = setup ~naive:true ~k:2 ~f:1 ~n:3 () in
        let c1 = List.nth writers 0 and c2 = List.nth writers 1 in
        let reader = Net.new_client net in

        (* W1: collect, then write requests to all three cells; deliver
           the requests and acks for servers 0 and 1 only — the request
           to server 2 stays in the network *)
        let w1 = Alg2_net.write t c1 (Value.Str "v1") in
        settle_reads net;
        step_client net c1;
        List.iter
          (fun srv ->
            deliver_where net ~what:"W1 write req"
              (fun d p -> to_server (s srv) d && write_of "v1" d p))
          [ 0; 1 ];
        deliver_all_where net (fun d p -> is_write_ack d p);
        step_client net c1;
        Alcotest.(check bool) "W1 returned" true (Net.call_returned w1);

        (* W2: collect (server 2 still holds the old value), then write;
           deliver requests+acks on servers 2 and 0; hold server 1 *)
        let w2 = Alg2_net.write t c2 (Value.Str "v2") in
        settle_reads net;
        step_client net c2;
        List.iter
          (fun srv ->
            deliver_where net ~what:"W2 write req"
              (fun d p -> to_server (s srv) d && write_of "v2" d p))
          [ 2; 0 ];
        deliver_all_where net (fun d p -> is_write_ack d p);
        step_client net c2;
        Alcotest.(check bool) "W2 returned" true (Net.call_returned w2);

        (* the slow datagram lands: W1's request to server 2 finally
           arrives and overwrites v2 there *)
        deliver_where net ~what:"stale W1 request"
          (fun d p -> to_server (s 2) d && write_of "v1" d p);

        (* a reader served by servers 1 and 2 misses v2 entirely *)
        let rd = Alg2_net.read t reader in
        List.iter
          (fun srv ->
            deliver_where net ~what:"reader request"
              (fun d p ->
                to_server (s srv) d
                && match p with Net.Reg_read _ -> true | _ -> false))
          [ 1; 2 ];
        deliver_all_where net (fun d p ->
            match p with Net.Reg_read_reply _ -> is_read_traffic d p | _ -> false);
        step_client net reader;
        Alcotest.(check bool) "read returned" true (Net.call_returned rd);
        Alcotest.(check bool)
          "stale value" true
          (Net.call_result rd = Some (Value.Str "v1"));
        match Ws_check.check_ws_safe (Net.history net) with
        | Ws_check.Violated _ -> ()
        | v -> Alcotest.failf "expected violation, got %a" Ws_check.verdict_pp v);
    test "the covering discipline survives the same schedule idea" (fun () ->
        (* full algorithm2 layout: the same writer-interleaving with a
           random finish stays WS-Safe because nobody reuses a cell with
           an outstanding request *)
        let _, net, t, writers = setup ~k:2 ~f:1 ~n:3 () in
        let reader = Net.new_client net in
        let rng = Regemu_sim.Rng.create 2 in
        ignore (finish net rng (Alg2_net.write t (List.nth writers 0) (Value.Str "v1")));
        ignore (finish net rng (Alg2_net.write t (List.nth writers 1) (Value.Str "v2")));
        let v = finish net rng (Alg2_net.read t reader) in
        Alcotest.(check bool) "v2" true (Value.equal v (Value.Str "v2"));
        Alcotest.(check bool)
          "ws-safe" true
          (Ws_check.is_ws_safe (Net.history net)));
  ]

(* suites assembled at the end of the file *)

(* --- the lower bound on the wire ------------------------------------------- *)

let lowerbound_tests =
  [
    test "the covering staircase appears on the network" (fun () ->
        List.iter
          (fun (k, f, n, seed) ->
            let p = Params.make_exn ~k ~f ~n in
            match Net_lowerbound.execute p ~seed () with
            | Error e -> Alcotest.failf "%a: %s" Params.pp p e
            | Ok run ->
                List.iter
                  (fun (s : Net_lowerbound.epoch_stats) ->
                    Alcotest.(check bool)
                      (Fmt.str "epoch %d returned" s.epoch)
                      true s.write_returned;
                    if s.covered_total < s.epoch * f then
                      Alcotest.failf "epoch %d: covered %d < i*f" s.epoch
                        s.covered_total;
                    Alcotest.(check int)
                      (Fmt.str "epoch %d on F" s.epoch)
                      0 s.covered_on_f;
                    Alcotest.(check int)
                      (Fmt.str "epoch %d |Qi|" s.epoch)
                      f s.q_size)
                  run.epochs;
                Alcotest.(check int) "final = kf" (k * f) run.final_covered)
          [ (3, 1, 3, 11); (5, 2, 6, 11); (2, 2, 9, 4) ]);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"the wire staircase holds for random params and seeds"
         ~count:20
         (QCheck.make
            QCheck.Gen.(
              let* f = int_range 1 2 in
              let* k = int_range 1 3 in
              let* n = int_range ((2 * f) + 1) 8 in
              let* seed = int_range 0 100_000 in
              return (Params.make_exn ~k ~f ~n, seed))
            ~print:(fun (p, s) -> Fmt.str "%a seed=%d" Params.pp p s))
         (fun (p, seed) ->
           match Net_lowerbound.execute p ~seed () with
           | Error e -> QCheck.Test.fail_reportf "%s" e
           | Ok run ->
               run.final_covered = p.Params.k * p.Params.f
               && List.for_all
                    (fun (s : Net_lowerbound.epoch_stats) ->
                      s.covered_on_f = 0)
                    run.epochs));
  ]


(* --- cross-substrate agreement --------------------------------------------- *)

let cross_substrate_tests =
  [
    test "shared-memory and wire lower bounds agree on final coverage"
      (fun () ->
        List.iter
          (fun (k, f, n) ->
            let p = Params.make_exn ~k ~f ~n in
            let shared =
              match
                Regemu_adversary.Lowerbound.execute
                  Regemu_core.Algorithm2.factory p ~seed:6 ()
              with
              | Ok run -> run.final_cov
              | Error e -> Alcotest.failf "shared: %s" e
            in
            let wire =
              match Net_lowerbound.execute p ~seed:6 () with
              | Ok run -> run.final_covered
              | Error e -> Alcotest.failf "wire: %s" e
            in
            Alcotest.(check int)
              (Fmt.str "%a" Params.pp p)
              shared wire;
            Alcotest.(check int) "both = kf" (k * f) wire)
          [ (2, 1, 3); (3, 1, 5); (3, 2, 7) ]);
  ]

let suites =
  [
    ("alg2net:basics", basic_tests);
    ("alg2net:random", random_tests);
    ("alg2net:violation", violation_tests);
    ("alg2net:lower-bound", lowerbound_tests);
    ("alg2net:cross-substrate", cross_substrate_tests);
  ]

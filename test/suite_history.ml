(* Tests for history extraction and the consistency checkers. *)

open Regemu_objects
open Regemu_sim
open Regemu_history

let test name f = Alcotest.test_case name `Quick f
let c i = Id.Client.of_int i

(* Hand-built history ops.  Times are arbitrary integers; only their
   order matters. *)
let op ?result ~index ~client ~hop ~inv ?ret () =
  {
    History.index;
    client = c client;
    hop;
    invoked_at = inv;
    returned_at = ret;
    result;
  }

let w ?ret ~index ~client ~inv value =
  op ~index ~client ~hop:(Trace.H_write (Value.Str value)) ~inv ?ret
    ?result:(if ret = None then None else Some Value.Unit) ()

let r ~index ~client ~inv ~ret value =
  op ~index ~client ~hop:Trace.H_read ~inv ~ret
    ~result:(Value.Str value) ()

let r_v0 ~index ~client ~inv ~ret =
  op ~index ~client ~hop:Trace.H_read ~inv ~ret ~result:Value.v0 ()

let verdict = Alcotest.testable Ws_check.verdict_pp Ws_check.verdict_equal

(* --- History basics -------------------------------------------------- *)

let history_tests =
  [
    test "of_trace pairs invokes with returns" (fun () ->
        let tr = Trace.create () in
        Trace.record tr (Trace.Invoke (c 0, Trace.H_read));
        Trace.record tr (Trace.Invoke (c 1, Trace.H_write (Value.Int 1)));
        Trace.record tr (Trace.Return (c 1, Trace.H_write (Value.Int 1), Value.Unit));
        Trace.record tr (Trace.Return (c 0, Trace.H_read, Value.Int 1));
        let h = History.of_trace tr in
        Alcotest.(check int) "two ops" 2 (List.length h);
        let rd = List.nth h 0 and wr = List.nth h 1 in
        Alcotest.(check bool) "read first" true (History.is_read rd);
        Alcotest.(check bool) "write second" true (History.is_write wr);
        Alcotest.(check bool) "overlap" true (History.concurrent rd wr));
    test "of_trace keeps pending ops" (fun () ->
        let tr = Trace.create () in
        Trace.record tr (Trace.Invoke (c 0, Trace.H_read));
        let h = History.of_trace tr in
        Alcotest.(check int) "one op" 1 (List.length h);
        Alcotest.(check int) "none complete" 0 (List.length (History.complete h)));
    test "precedes uses return < invoke" (fun () ->
        let a = w ~index:0 ~client:0 ~inv:1 ~ret:2 "a" in
        let b = w ~index:1 ~client:1 ~inv:3 ~ret:4 "b" in
        Alcotest.(check bool) "a<b" true (History.precedes a b);
        Alcotest.(check bool) "not b<a" false (History.precedes b a));
    test "pending op precedes nothing" (fun () ->
        let a = w ~index:0 ~client:0 ~inv:1 "a" in
        let b = w ~index:1 ~client:1 ~inv:5 ~ret:6 "b" in
        Alcotest.(check bool) "not a<b" false (History.precedes a b);
        Alcotest.(check bool) "concurrent" true (History.concurrent a b));
    test "write_sequential detects overlap" (fun () ->
        let seq =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            w ~index:1 ~client:1 ~inv:3 ~ret:4 "b" ]
        in
        let conc =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:3 "a";
            w ~index:1 ~client:1 ~inv:2 ~ret:4 "b" ]
        in
        Alcotest.(check bool) "seq" true (History.write_sequential seq);
        Alcotest.(check bool) "conc" false (History.write_sequential conc));
  ]

(* --- WS-Safety -------------------------------------------------------- *)

let ws_safe_tests =
  [
    test "read of last preceding write holds" (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            w ~index:1 ~client:1 ~inv:3 ~ret:4 "b";
            r ~index:2 ~client:2 ~inv:5 ~ret:6 "b" ]
        in
        Alcotest.check verdict "holds" Ws_check.Holds (Ws_check.check_ws_safe h));
    test "read of an overwritten value is flagged" (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            w ~index:1 ~client:1 ~inv:3 ~ret:4 "b";
            r ~index:2 ~client:2 ~inv:5 ~ret:6 "a" ]
        in
        match Ws_check.check_ws_safe h with
        | Ws_check.Violated v ->
            Alcotest.(check bool) "got a" true (Value.equal v.got (Value.Str "a"))
        | v -> Alcotest.failf "expected violation, got %a" Ws_check.verdict_pp v);
    test "read concurrent with a write is unconstrained by WS-Safety"
      (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            w ~index:1 ~client:1 ~inv:4 ~ret:6 "b";
            (* read overlaps the second write and returns garbage *)
            r ~index:2 ~client:2 ~inv:5 ~ret:7 "zzz" ]
        in
        Alcotest.check verdict "holds" Ws_check.Holds (Ws_check.check_ws_safe h));
    test "initial value allowed before any write" (fun () ->
        let h =
          [ r_v0 ~index:0 ~client:2 ~inv:1 ~ret:2;
            w ~index:1 ~client:0 ~inv:3 ~ret:4 "a" ]
        in
        Alcotest.check verdict "holds" Ws_check.Holds (Ws_check.check_ws_safe h));
    test "initial value after a complete write is flagged" (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            r_v0 ~index:1 ~client:2 ~inv:3 ~ret:4 ]
        in
        match Ws_check.check_ws_safe h with
        | Ws_check.Violated _ -> ()
        | v -> Alcotest.failf "expected violation, got %a" Ws_check.verdict_pp v);
    test "not write-sequential is vacuous" (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:5 "a";
            w ~index:1 ~client:1 ~inv:2 ~ret:6 "b";
            r ~index:2 ~client:2 ~inv:7 ~ret:8 "zzz" ]
        in
        Alcotest.check verdict "vacuous" Ws_check.Vacuous
          (Ws_check.check_ws_safe h));
    test "pending read unconstrained" (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            op ~index:1 ~client:2 ~hop:Trace.H_read ~inv:3 () ]
        in
        Alcotest.check verdict "holds" Ws_check.Holds (Ws_check.check_ws_safe h));
  ]

(* --- WS-Regularity ---------------------------------------------------- *)

let ws_regular_tests =
  [
    test "read concurrent with write may return either value" (fun () ->
        let mk result =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            w ~index:1 ~client:1 ~inv:4 ~ret:6 "b";
            r ~index:2 ~client:2 ~inv:5 ~ret:7 result ]
        in
        Alcotest.check verdict "old ok" Ws_check.Holds
          (Ws_check.check_ws_regular (mk "a"));
        Alcotest.check verdict "new ok" Ws_check.Holds
          (Ws_check.check_ws_regular (mk "b")));
    test "read concurrent with write may not return older-than-last-complete"
      (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            w ~index:1 ~client:1 ~inv:3 ~ret:4 "b";
            w ~index:2 ~client:0 ~inv:6 ~ret:8 "c";
            (* concurrent with write "c" but "a" is two writes back *)
            r ~index:3 ~client:2 ~inv:7 ~ret:9 "a" ]
        in
        match Ws_check.check_ws_regular h with
        | Ws_check.Violated _ -> ()
        | v -> Alcotest.failf "expected violation, got %a" Ws_check.verdict_pp v);
    test "read overlapping a pending write may see it" (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            w ~index:1 ~client:1 ~inv:3 "b" (* pending forever *);
            r ~index:2 ~client:2 ~inv:4 ~ret:5 "b" ]
        in
        Alcotest.check verdict "holds" Ws_check.Holds
          (Ws_check.check_ws_regular h));
    test "read may also ignore a pending write" (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            w ~index:1 ~client:1 ~inv:3 "b";
            r ~index:2 ~client:2 ~inv:4 ~ret:5 "a" ]
        in
        Alcotest.check verdict "holds" Ws_check.Holds
          (Ws_check.check_ws_regular h));
    test "read must not see a write invoked after it returned" (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            r ~index:1 ~client:2 ~inv:3 ~ret:4 "b";
            w ~index:2 ~client:1 ~inv:5 ~ret:6 "b" ]
        in
        match Ws_check.check_ws_regular h with
        | Ws_check.Violated _ -> ()
        | v -> Alcotest.failf "expected violation, got %a" Ws_check.verdict_pp v);
    test "two sequential reads may both be valid with different values"
      (fun () ->
        (* regularity famously allows new/old inversion across readers
           only when both overlap the write; here read1 precedes the
           write's return but read2 starts after read1 — both overlap *)
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:10 "a";
            r ~index:1 ~client:2 ~inv:2 ~ret:3 "a";
            r ~index:2 ~client:3 ~inv:4 ~ret:5 "" ]
        in
        let h =
          List.map
            (fun (o : History.op) ->
              if o.index = 2 then { o with result = Some Value.v0 } else o)
            h
        in
        Alcotest.check verdict "holds" Ws_check.Holds
          (Ws_check.check_ws_regular h));
  ]

(* --- Brute-force linearizability -------------------------------------- *)

let lin_tests =
  [
    test "register: sequential write/read linearizable" (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            r ~index:1 ~client:1 ~inv:3 ~ret:4 "a" ]
        in
        Alcotest.(check bool) "lin" true (Linearize.linearizable Linearize.register h));
    test "register: stale read not linearizable" (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            w ~index:1 ~client:1 ~inv:3 ~ret:4 "b";
            r ~index:2 ~client:2 ~inv:5 ~ret:6 "a" ]
        in
        Alcotest.(check bool) "not lin" false
          (Linearize.linearizable Linearize.register h));
    test "register: new-old inversion not linearizable" (fun () ->
        (* both reads overlap nothing; r1 sees b then r2 sees a *)
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "a";
            w ~index:1 ~client:1 ~inv:3 ~ret:4 "b";
            r ~index:2 ~client:2 ~inv:5 ~ret:6 "b";
            r ~index:3 ~client:3 ~inv:7 ~ret:8 "a" ]
        in
        Alcotest.(check bool) "not lin" false
          (Linearize.linearizable Linearize.register h));
    test "register: concurrent reads may disagree if both overlap the write"
      (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:10 "b";
            r ~index:1 ~client:2 ~inv:2 ~ret:3 "b";
            r_v0 ~index:2 ~client:3 ~inv:4 ~ret:5 ]
        in
        (* r1 before r2 in real time: linearizing w before r1 forces the
           register to already hold b when r2 runs -> not linearizable *)
        Alcotest.(check bool) "not lin" false
          (Linearize.linearizable Linearize.register h));
    test "max-register: stale read-max not linearizable" (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "b";
            w ~index:1 ~client:1 ~inv:3 ~ret:4 "a";
            r ~index:2 ~client:2 ~inv:5 ~ret:6 "a" ]
        in
        (* write-max keeps the max: "b" > "a", so read-max must see b *)
        Alcotest.(check bool) "not lin" false
          (Linearize.linearizable Linearize.max_register h));
    test "max-register: max retained across smaller writes" (fun () ->
        let h =
          [ w ~index:0 ~client:0 ~inv:1 ~ret:2 "b";
            w ~index:1 ~client:1 ~inv:3 ~ret:4 "a";
            r ~index:2 ~client:2 ~inv:5 ~ret:6 "b" ]
        in
        Alcotest.(check bool) "lin" true
          (Linearize.linearizable Linearize.max_register h));
    test "pending write may be linearized or dropped" (fun () ->
        let base =
          [ w ~index:0 ~client:0 ~inv:1 "a" (* pending *) ]
        in
        let see = base @ [ r ~index:1 ~client:1 ~inv:2 ~ret:3 "a" ] in
        let miss = base @ [ r_v0 ~index:1 ~client:1 ~inv:2 ~ret:3 ] in
        Alcotest.(check bool) "see" true
          (Linearize.linearizable Linearize.register see);
        Alcotest.(check bool) "miss" true
          (Linearize.linearizable Linearize.register miss));
    test "empty history linearizable" (fun () ->
        Alcotest.(check bool) "lin" true
          (Linearize.linearizable Linearize.register []));
  ]

(* --- Cross-validation: WS checkers agree with brute force ------------- *)

(* Random small write-sequential histories with one reader; WS-Regular
   must agree with the existence of a linearization of writes ∪ {read}
   (that is literally its definition). *)
let gen_ws_history =
  QCheck.Gen.(
    let* num_writes = int_range 0 4 in
    let* gap = int_range 0 (2 * Stdlib.max 1 num_writes) in
    let* len = int_range 1 3 in
    let* v_ix = int_range 0 (Stdlib.max 0 (num_writes - 1)) in
    let* use_v0 = bool in
    (* writes at times (2i+1, 2i+2); read spans [gap, gap+len] *)
    let writes =
      List.init num_writes (fun i ->
          w ~index:i ~client:i
            ~inv:((2 * i) + 1)
            ~ret:((2 * i) + 2)
            (Fmt.str "v%d" i))
    in
    let read =
      if use_v0 || num_writes = 0 then
        r_v0 ~index:num_writes ~client:99 ~inv:gap ~ret:(gap + len)
      else
        r ~index:num_writes ~client:99 ~inv:gap ~ret:(gap + len)
          (Fmt.str "v%d" v_ix)
    in
    return (writes @ [ read ]))

let arb_ws_history =
  QCheck.make gen_ws_history ~print:(fun h -> Fmt.str "%a" History.pp h)

let cross_validation_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"WS-Regular checker = brute-force linearization"
         ~count:1000 arb_ws_history (fun h ->
           let fast =
             match Ws_check.check_ws_regular h with
             | Ws_check.Holds | Ws_check.Vacuous -> true
             | Ws_check.Violated _ -> false
           in
           let slow = Linearize.linearizable Linearize.register h in
           fast = slow));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"WS-Safe is implied by WS-Regular on the same history"
         ~count:1000 arb_ws_history (fun h ->
           match (Ws_check.check_ws_regular h, Ws_check.check_ws_safe h) with
           | (Ws_check.Holds | Ws_check.Vacuous), Ws_check.Violated _ -> false
           | _ -> true));
  ]

let suites =
  [
    ("history:basics", history_tests);
    ("history:ws-safe", ws_safe_tests);
    ("history:ws-regular", ws_regular_tests);
    ("history:linearize", lin_tests);
    ("history:cross-validation", cross_validation_tests);
  ]

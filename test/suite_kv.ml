(* Tests for the replicated key-value store built on the emulation API. *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_apps

let test name f = Alcotest.test_case name `Quick f

let setup ?(factory = Regemu_core.Algorithm2.factory) ~k ~f ~n () =
  let p = Params.make_exn ~k ~f ~n in
  let sim = Sim.create ~n () in
  let writers = List.init k (fun _ -> Sim.new_client sim) in
  let kv = Kv.create sim p ~factory ~writers in
  let reader = Sim.new_client sim in
  let policy = Policy.uniform (Rng.create 12) in
  (sim, kv, writers, reader, policy)

let kv_tests =
  [
    test "put then get round-trips" (fun () ->
        let _, kv, writers, reader, policy = setup ~k:2 ~f:1 ~n:4 () in
        Kv.put kv ~policy ~client:(List.hd writers) "a" "1";
        Alcotest.(check (option string))
          "a" (Some "1")
          (Kv.get kv ~policy ~client:reader "a"));
    test "unknown keys read as absent without allocating storage" (fun () ->
        let _, kv, _, reader, policy = setup ~k:1 ~f:1 ~n:3 () in
        Alcotest.(check (option string))
          "missing" None
          (Kv.get kv ~policy ~client:reader "ghost");
        Alcotest.(check int) "no storage" 0 (Kv.storage_objects kv);
        Alcotest.(check (list string)) "no keys" [] (Kv.keys kv));
    test "storage grows per key by the Algorithm 2 budget" (fun () ->
        let p = Params.make_exn ~k:2 ~f:1 ~n:4 in
        let per_key = Regemu_bounds.Formulas.register_upper_bound p in
        let _, kv, writers, _, policy = setup ~k:2 ~f:1 ~n:4 () in
        Kv.put kv ~policy ~client:(List.hd writers) "x" "1";
        Kv.put kv ~policy ~client:(List.hd writers) "y" "2";
        Alcotest.(check int) "2 keys" (2 * per_key) (Kv.storage_objects kv));
    test "latest put wins per key; keys are independent" (fun () ->
        let _, kv, writers, reader, policy = setup ~k:2 ~f:1 ~n:4 () in
        let w1 = List.nth writers 0 and w2 = List.nth writers 1 in
        Kv.put kv ~policy ~client:w1 "a" "1";
        Kv.put kv ~policy ~client:w2 "a" "2";
        Kv.put kv ~policy ~client:w1 "b" "solo";
        Alcotest.(check (option string))
          "a=2" (Some "2")
          (Kv.get kv ~policy ~client:reader "a");
        Alcotest.(check (option string))
          "b" (Some "solo")
          (Kv.get kv ~policy ~client:reader "b"));
    test "delete makes a key read as absent" (fun () ->
        let _, kv, writers, reader, policy = setup ~k:1 ~f:1 ~n:3 () in
        let w = List.hd writers in
        Kv.put kv ~policy ~client:w "a" "1";
        Kv.delete kv ~policy ~client:w "a";
        Alcotest.(check (option string))
          "gone" None
          (Kv.get kv ~policy ~client:reader "a");
        (* and can be re-created *)
        Kv.put kv ~policy ~client:w "a" "again";
        Alcotest.(check (option string))
          "back" (Some "again")
          (Kv.get kv ~policy ~client:reader "a"));
    test "survives f crashes" (fun () ->
        let sim, kv, writers, reader, policy = setup ~k:2 ~f:2 ~n:6 () in
        let w = List.hd writers in
        Kv.put kv ~policy ~client:w "a" "before";
        Sim.crash_server sim (Id.Server.of_int 0);
        Sim.crash_server sim (Id.Server.of_int 3);
        Kv.put kv ~policy ~client:w "a" "after";
        Alcotest.(check (option string))
          "after" (Some "after")
          (Kv.get kv ~policy ~client:reader "a"));
    test "works over abd-max too (pluggable factory)" (fun () ->
        let _, kv, writers, reader, policy =
          setup ~factory:Regemu_baselines.Abd_max.factory ~k:2 ~f:1 ~n:3 ()
        in
        Kv.put kv ~policy ~client:(List.hd writers) "a" "x";
        Alcotest.(check (option string))
          "a" (Some "x")
          (Kv.get kv ~policy ~client:reader "a");
        (* max-register budget: 2f+1 per key *)
        Alcotest.(check int) "storage" 3 (Kv.storage_objects kv));
    test "non-writer put rejected" (fun () ->
        let sim, kv, _, _, policy = setup ~k:1 ~f:1 ~n:3 () in
        let stranger = Sim.new_client sim in
        Alcotest.(check bool)
          "raises" true
          (try
             Kv.put kv ~policy ~client:stranger "a" "1";
             false
           with Invalid_argument _ -> true));
    test "wrong writer count rejected at creation" (fun () ->
        let p = Params.make_exn ~k:2 ~f:1 ~n:4 in
        let sim = Sim.create ~n:4 () in
        let w = Sim.new_client sim in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore
               (Kv.create sim p ~factory:Regemu_core.Algorithm2.factory
                  ~writers:[ w ]);
             false
           with Invalid_argument _ -> true));
  ]

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"kv agrees with an in-memory map under random sequential ops"
         ~count:60
         (QCheck.make
            QCheck.Gen.(
              let* seed = int_range 0 1_000_000 in
              let* ops =
                list_size (int_range 1 15)
                  (triple (int_range 0 2) (int_range 0 2) (int_range 0 9))
              in
              return (seed, ops))
            ~print:(fun (s, ops) ->
              Fmt.str "seed=%d ops=%d" s (List.length ops)))
         (fun (seed, ops) ->
           let _, kv, writers, reader, _ = setup ~k:2 ~f:1 ~n:4 () in
           let policy = Policy.uniform (Rng.create seed) in
           let model : (string, string) Hashtbl.t = Hashtbl.create 4 in
           List.for_all
             (fun (kind, key_ix, v) ->
               let key = Fmt.str "k%d" key_ix in
               match kind with
               | 0 ->
                   Kv.put kv ~policy
                     ~client:(List.nth writers (v mod 2))
                     key (string_of_int v);
                   Hashtbl.replace model key (string_of_int v);
                   true
               | 1 ->
                   Kv.delete kv ~policy ~client:(List.hd writers) key;
                   Hashtbl.remove model key;
                   true
               | _ ->
                   Kv.get kv ~policy ~client:reader key
                   = Hashtbl.find_opt model key)
             ops));
  ]



let failure_path_tests =
  [
    Alcotest.test_case "get fails loudly when the store loses its majority"
      `Quick
      (fun () ->
        let p = Params.make_exn ~k:1 ~f:1 ~n:3 in
        let sim = Sim.create ~n:3 () in
        let writers = [ Sim.new_client sim ] in
        let kv =
          Kv.create sim p ~factory:Regemu_core.Algorithm2.factory ~writers
        in
        let policy = Policy.responds_first in
        Kv.put kv ~policy ~client:(List.hd writers) "a" "1";
        List.iter (Sim.crash_server sim) (Sim.servers sim);
        match Kv.get kv ~policy ~client:(List.hd writers) "a" with
        | exception Failure msg ->
            Alcotest.(check bool)
              "diagnosed" true
              (Astring_contains.contains msg "stuck")
        | _ -> Alcotest.fail "expected Failure");
  ]

let suites =
  [
    ("kv:unit", kv_tests);
    ("kv:model", property_tests);
    ("kv:failures", failure_path_tests);
  ]

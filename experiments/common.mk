# Shared plumbing for the campaign matrix.  Each experiment directory
# defines EXPERIMENT and RUN_CMD (its `params` file carries the knobs)
# and includes this; see ../../EXPERIMENTS.md for the layout.

ROOT := $(abspath $(dir $(lastword $(MAKEFILE_LIST)))/..)
REGEMU := $(ROOT)/_build/default/bin/regemu.exe
TREND := $(ROOT)/BENCH_explore.json
OUT ?= out.json

.PHONY: all run analyze clean binary

all: run analyze

binary:
	dune build --root $(ROOT) bin/regemu.exe

# run the experiment, timing it so analyze can report throughput
run: binary
	@start=$$(date +%s.%N); \
	$(RUN_CMD) || exit $$?; \
	end=$$(date +%s.%N); \
	awk -v a=$$start -v b=$$end 'BEGIN { printf "%.3f\n", b - a }' \
	  > elapsed_s.txt; \
	echo "run complete: $(OUT) in $$(cat elapsed_s.txt)s"

analyze:
	./analyze.sh

clean:
	rm -f out.json cert.json elapsed_s.txt

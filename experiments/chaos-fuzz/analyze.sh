#!/bin/sh
# Distill the cgfuzz report into a trend record beside BENCH_live.json.
set -e
cd "$(dirname "$0")"
exec python3 ../append_trend.py chaos-fuzz out.json ../../BENCH_explore.json

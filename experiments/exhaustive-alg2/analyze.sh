#!/bin/sh
# Distill the regemu-cert/1 certificate into a trend record.
set -e
cd "$(dirname "$0")"
exec python3 ../append_trend.py exhaustive-alg2 cert.json ../../BENCH_explore.json

#!/usr/bin/env python3
"""Append one experiment's trend record to the campaign trend file.

Usage: append_trend.py EXPERIMENT RESULT_JSON TREND_JSON

Reads the experiment's result (regemu-cgfuzz/1, regemu-cert/1, or
regemu-keyspace/1), distills the few numbers worth tracking over time,
and appends a regemu-explore-trend/1 record to TREND_JSON (a JSON
array, created on first use) kept beside BENCH_live.json.  If an
elapsed_s.txt sits next to the result (written by `make run`), rates
are derived from it.
"""

import json
import os
import sys
import time


def metrics_of(doc, elapsed):
    schema = doc.get("schema")
    if schema == "regemu-cgfuzz/1":
        runs = doc["runs"]
        m = {
            "runs": runs,
            "corpus": doc["corpus"],
            "schedules": doc["schedules"],
            "edges": doc["edges"],
            "failing_runs": doc["failing_runs"],
            "violation_kinds": sorted(
                {",".join(v["key"]) for v in doc.get("violations", [])}
            ),
            "new_digest_rate": doc["schedules"] / runs if runs else 0.0,
        }
        if elapsed:
            m["schedules_per_sec"] = round(runs / elapsed, 2)
        return m
    if schema == "regemu-cert/1":
        return {
            "verdict": doc["verdict"],
            "explored": doc["explored"],
            "pruned": doc["pruned"],
            "pruned_ratio": doc["pruned_ratio"],
            "brute_force_floor": doc["brute_force_floor"],
            "terminal_runs": doc["terminal_runs"],
            "distinct_states": doc["distinct_states"],
            "max_depth": doc["max_depth"],
            "exhaustive": doc["exhaustive"],
        }
    if schema == "regemu-keyspace/1":
        skews = doc["skews"]
        return {
            "skews": len(skews),
            "completed": sum(s["completed"] for s in skews),
            "violations": sum(s["violations"] for s in skews),
            "min_ops_per_s": min(s["ops_per_s"] for s in skews),
            "max_resident_ops": max(s["max_resident_ops"] for s in skews),
            "within_budget": all(s["within_budget"] for s in skews),
        }
    raise SystemExit(f"append_trend: unhandled result schema {schema!r}")


def main():
    if len(sys.argv) != 4:
        raise SystemExit(__doc__.strip())
    experiment, result_path, trend_path = sys.argv[1:]

    with open(result_path) as fh:
        doc = json.load(fh)

    elapsed = None
    elapsed_path = os.path.join(os.path.dirname(result_path) or ".",
                                "elapsed_s.txt")
    if os.path.exists(elapsed_path):
        with open(elapsed_path) as fh:
            elapsed = float(fh.read().strip())

    record = {
        "schema": "regemu-explore-trend/1",
        "experiment": experiment,
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "source_schema": doc.get("schema"),
        "elapsed_s": elapsed,
        "metrics": metrics_of(doc, elapsed),
    }

    trend = []
    if os.path.exists(trend_path):
        with open(trend_path) as fh:
            trend = json.load(fh)
        if not isinstance(trend, list):
            raise SystemExit(f"append_trend: {trend_path} is not a JSON array")
    trend.append(record)

    tmp = trend_path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(trend, fh, indent=1)
        fh.write("\n")
    os.replace(tmp, trend_path)
    print(f"appended {experiment} trend record "
          f"({len(trend)} total) to {trend_path}")


if __name__ == "__main__":
    main()

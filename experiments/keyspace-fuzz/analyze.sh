#!/bin/sh
# Distill the regemu-keyspace/1 trajectory into a trend record.
set -e
cd "$(dirname "$0")"
exec python3 ../append_trend.py keyspace-fuzz out.json ../../BENCH_explore.json

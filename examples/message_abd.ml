(* The original ABD, as messages on the wire.

   The paper's model abstracts servers into fault-prone shared objects;
   this example runs the protocol one level down: 2f+1 server
   processes, clients exchanging query/update messages with them over
   an asynchronous, reordering network, crashes included.  The same
   history checkers validate the runs.

   Run with: dune exec examples/message_abd.exe *)

open Regemu_objects
open Regemu_netsim

let drive net rng ~goal =
  let rec go budget =
    if goal () then ()
    else if budget = 0 then failwith "run stalled"
    else begin
      (match Net.enabled net with
      | [] -> ()
      | evs -> Net.fire net (Regemu_sim.Rng.pick rng evs));
      go (budget - 1)
    end
  in
  go 100_000

let finish net rng call =
  drive net rng ~goal:(fun () -> Net.call_returned call);
  Option.get (Net.call_result call)

let () =
  let f = 1 in
  let net = Net.create ~n:3 () in
  let abd = Abd_net.create net ~f ~write_back_reads:true () in
  let alice = Net.new_client net and bob = Net.new_client net in
  let rng = Regemu_sim.Rng.create 99 in

  Fmt.pr "ABD over message passing: %d server processes, tolerating %d \
          crash(es)@.@."
    (Abd_net.replicas abd) f;

  ignore (finish net rng (Abd_net.write abd alice (Value.Str "hello")));
  Fmt.pr "alice wrote \"hello\"  (%d messages delivered so far)@."
    (Net.delivered net);

  let v = finish net rng (Abd_net.read abd bob) in
  Fmt.pr "bob read %a          (%d messages delivered so far)@." Value.pp v
    (Net.delivered net);

  Net.crash_server net (Id.Server.of_int 2);
  Fmt.pr "@.server s2 crashed — in-flight messages to it are lost@.";

  ignore (finish net rng (Abd_net.write abd bob (Value.Str "world")));
  let v = finish net rng (Abd_net.read abd alice) in
  Fmt.pr "bob wrote \"world\", alice read %a@.@." Value.pp v;

  let history = Net.history net in
  Fmt.pr "history is atomic: %b (write-back reads)@."
    (Regemu_history.Regularity.is_atomic history);
  Fmt.pr "total messages delivered: %d@." (Net.delivered net)

(* Bug hunting, three ways.

   The naive 2f+1-register algorithm is broken (the paper's Lemma 4),
   but how would you *find* that, given only the executable?  This
   example runs the repository's three falsification tools against it
   and against Algorithm 2:

   1. uniform random fuzzing        — finds nothing (the bad schedule
                                      is too rare);
   2. procrastinating fuzzing       — holds responses the way the
                                      covering adversary would, and
                                      finds the violation quickly;
   3. bounded systematic search     — enumerates schedules and finds it
                                      deterministically.

   Run with: dune exec examples/bug_hunt.exe *)

open Regemu_bounds
open Regemu_objects
open Regemu_workload
open Regemu_mcheck

let p = Params.make_exn ~k:2 ~f:1 ~n:3

let fuzz name factory ~policy ~runs =
  let o = Fuzz.run factory p ?policy ~scenario:Fuzz.Sequential ~runs ~seed:0 () in
  Fmt.pr "  %-28s %a@." name Fuzz.outcome_pp o

let () =
  Fmt.pr "== hunting the naive 2f+1-register algorithm (k=2, f=1, n=3) ==@.@.";

  Fmt.pr "1. uniform random fuzzing:@.";
  fuzz "naive-reg" Regemu_baselines.Naive_reg.factory ~policy:None ~runs:60;
  fuzz "algorithm2" Regemu_core.Algorithm2.factory ~policy:None ~runs:60;
  Fmt.pr "   (nothing: the violating schedule is a measure-zero needle)@.@.";

  Fmt.pr "2. procrastinating fuzzing (hold 40%% of responses for 15 steps):@.";
  let procrastinate =
    Some
      (fun rng ->
        Regemu_sim.Policy.procrastinating rng ~hold_percent:40 ~hold_steps:15)
  in
  fuzz "naive-reg" Regemu_baselines.Naive_reg.factory ~policy:procrastinate
    ~runs:60;
  fuzz "algorithm2" Regemu_core.Algorithm2.factory ~policy:procrastinate
    ~runs:60;
  Fmt.pr "   (the shaped adversary catches naive-reg; algorithm2 is clean)@.@.";

  Fmt.pr "3. bounded systematic search (two writes then a read):@.";
  let explore factory name =
    let r =
      Explore.run ~stop_on_violation:true
        (Explore.emulation_scenario factory p ~mode:Explore.Sequential
           ~writer_ops:[ [ Value.Str "a" ]; [ Value.Str "b" ] ]
           ~readers:1 ~reads_each:1 ())
        ~max_fired:2_500_000
    in
    Fmt.pr "  %-12s %a@." name Explore.result_pp r;
    List.iter
      (fun h ->
        Fmt.pr "  violating schedule found:@.";
        Fmt.pr "%a@." Regemu_history.History.pp h)
      (match r.ws_safe_violations with [] -> [] | h :: _ -> [ h ])
  in
  explore Regemu_baselines.Naive_reg.factory "naive-reg";
  explore Regemu_core.Algorithm2.factory "algorithm2";
  Fmt.pr
    "@.The scripted adversary (see adversary_demo.exe) remains the only \
     *guaranteed* way: it is the paper's Lemma 4 proof, executed.@."

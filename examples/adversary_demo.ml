(* Watch the lower bound happen.

   First the Lemma 1 adversary drives Algorithm 2 through k sequential
   writes, printing the covering growth that forces the space bound.
   Then the same adversarial idea is replayed against a naive
   2f+1-register algorithm, producing a concrete WS-Safety violation
   (Figure 2 of the paper) narrated step by step.

   Run with: dune exec examples/adversary_demo.exe *)

open Regemu_bounds
open Regemu_adversary

let () =
  let p = Params.make_exn ~k:4 ~f:2 ~n:7 in
  Fmt.pr "== Part 1: the adversary vs Algorithm 2 (%a) ==@.@." Params.pp p;
  (match Lowerbound.execute Regemu_core.Algorithm2.factory p ~seed:123 () with
  | Error e -> Fmt.pr "unexpected failure: %s@." e
  | Ok run ->
      Fmt.pr
        "Every write is forced to leave f=%d registers covered by blocked \
         low-level writes:@."
        p.f;
      List.iter
        (fun (s : Lowerbound.epoch_stats) ->
          Fmt.pr "  after write %d: %d registers covered (>= %d guaranteed), \
                  none on the protected set F@."
            s.epoch s.cov_total (s.epoch * p.f))
        run.epochs;
      Fmt.pr
        "Final: %d covered registers, %d base registers used — at least \
         kf + ceil(kf/(n-f-1))(f+1) = %d are unavoidable (Theorem 1).@.@."
        run.final_cov run.final_objects_used
        (Formulas.register_lower_bound p));

  Fmt.pr "== Part 2: what happens without the space (naive 2f+1 registers) \
          ==@.@.";
  match Violation.against_naive ~f:2 with
  | Error e -> Fmt.pr "construction failed: %s@." e
  | Ok o ->
      List.iteri (fun i s -> Fmt.pr "  %d. %s@." (i + 1) s) o.steps;
      Fmt.pr "@.checker: %a@." Regemu_history.Ws_check.verdict_pp o.verdict;
      Fmt.pr
        "The reader missed the last complete write — exactly the erasure \
         the covering argument predicts. Registers cannot be safely reused \
         while they have pending writes, so the object count must grow \
         with the number of writers.@."

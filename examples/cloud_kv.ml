(* A miniature replicated key-value store — the kind of cloud storage
   service the paper's introduction motivates — using the Kv library
   from regemu_apps: one emulated multi-writer register per key, all
   sharing the same pool of crash-prone servers.

   Run with: dune exec examples/cloud_kv.exe *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_apps

let () =
  let p = Params.make_exn ~k:3 ~f:1 ~n:5 in
  let sim = Sim.create ~n:p.n () in
  let writers = List.init p.k (fun _ -> Sim.new_client sim) in
  let kv =
    Kv.create sim p ~factory:Regemu_core.Algorithm2.factory ~writers
  in
  let reader = Sim.new_client sim in
  let policy = Policy.uniform (Rng.create 7) in
  let w1, w2, w3 =
    match writers with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in

  Fmt.pr "cloud-kv: %d servers, tolerating %d crash(es), %d writers@." p.n
    p.f p.k;
  Fmt.pr "storage budget: %d base registers per key@.@."
    (Formulas.register_upper_bound p);

  Kv.put kv ~policy ~client:w1 "users/ada" "countess";
  Kv.put kv ~policy ~client:w2 "users/bob" "builder";
  Kv.put kv ~policy ~client:w3 "config/ttl" "3600";
  Fmt.pr "initial state:@.";
  List.iter
    (fun key ->
      Fmt.pr "  %s = %a@." key
        Fmt.(option ~none:(any "<absent>") string)
        (Kv.get kv ~policy ~client:reader key))
    (Kv.keys kv);

  (* a server fails mid-run *)
  Sim.crash_server sim (Id.Server.of_int 2);
  Fmt.pr "@.server s2 crashed; the store keeps serving:@.";

  Kv.put kv ~policy ~client:w2 "users/ada" "enchantress";
  Kv.put kv ~policy ~client:w1 "config/ttl" "60";
  Kv.delete kv ~policy ~client:w3 "users/bob";
  List.iter
    (fun key ->
      Fmt.pr "  %s = %a@." key
        Fmt.(option ~none:(any "<absent>") string)
        (Kv.get kv ~policy ~client:reader key))
    (Kv.keys kv);

  (* consistency audit: every key reflects its latest put/delete *)
  let expected =
    [
      ("users/ada", Some "enchantress");
      ("users/bob", None);
      ("config/ttl", Some "60");
    ]
  in
  let ok =
    List.for_all
      (fun (key, want) -> Kv.get kv ~policy ~client:reader key = want)
      expected
  in
  Fmt.pr "@.audit: every key returns its latest update: %b@." ok;
  Fmt.pr "total base objects: %d across %d keys@." (Kv.storage_objects kv)
    (List.length (Kv.keys kv));
  if not ok then exit 1

(* Capacity planning with the paper's bounds: given a cluster size, a
   failure threshold, a writer count, and per-server storage limits,
   work out which emulation is feasible and what it costs.

   This is Theorems 1, 3 and 7 used as an engineering tool.

   Run with: dune exec examples/space_planner.exe -- [k] [f] [n] [capacity] *)

open Regemu_bounds

let plan ~k ~f ~n ~capacity =
  Fmt.pr "== space planning for k=%d writers, f=%d crashes, n=%d servers, \
          per-server capacity %d ==@.@."
    k f n capacity;
  match Params.make ~k ~f ~n with
  | Error e -> Fmt.pr "infeasible: %s@." e
  | Ok p ->
      (* RMW-capable servers *)
      Fmt.pr "with max-register or CAS servers: %d objects (independent of \
              k)@."
        (Formulas.maxreg_bound p);
      (* plain registers *)
      let lower = Formulas.register_lower_bound p in
      let upper = Formulas.register_upper_bound p in
      Fmt.pr "with plain read/write registers:@.";
      Fmt.pr "  any algorithm needs  >= %d registers (Theorem 1)@." lower;
      Fmt.pr "  Algorithm 2 uses        %d registers (Theorem 3)@." upper;
      Fmt.pr "  layout: z=%d writers per set, sets of sizes %a@."
        (Formulas.z p)
        Fmt.(brackets (list ~sep:semi int))
        (Formulas.set_sizes p);
      (* does it fit per-server storage? *)
      let sim = Regemu_sim.Sim.create ~n () in
      let layout = Regemu_core.Layout.build sim p in
      let max_load =
        List.fold_left
          (fun acc s ->
            Stdlib.max acc
              (List.length (Regemu_core.Layout.objects_on layout s)))
          0 (Regemu_sim.Sim.servers sim)
      in
      Fmt.pr "  heaviest server stores  %d registers@." max_load;
      if max_load <= capacity then Fmt.pr "  fits capacity %d: yes@." capacity
      else begin
        Fmt.pr "  fits capacity %d: no@." capacity;
        let needed = Formulas.min_servers ~k ~f ~capacity in
        Fmt.pr "  Theorem 7: with capacity %d you need at least %d servers@."
          capacity needed;
        (* find a server count where the layout actually fits *)
        let rec search n' =
          if n' > 100 * needed then None
          else
            match Params.make ~k ~f ~n:n' with
            | Error _ -> search (n' + 1)
            | Ok p' ->
                let sim' = Regemu_sim.Sim.create ~n:n' () in
                let l' = Regemu_core.Layout.build sim' p' in
                let load =
                  List.fold_left
                    (fun acc s ->
                      Stdlib.max acc
                        (List.length (Regemu_core.Layout.objects_on l' s)))
                    0 (Regemu_sim.Sim.servers sim')
                in
                if load <= capacity then Some (n', load) else search (n' + 1)
        in
        match search n with
        | Some (n', load) ->
            Fmt.pr
              "  Algorithm 2's layout fits from n=%d (heaviest server: %d)@."
              n' load
        | None -> Fmt.pr "  no feasible layout found in the search range@."
      end;
      (* where more servers stop helping *)
      Fmt.pr "  adding servers stops helping at n=%d (cost flattens to %d)@."
        (Formulas.saturation_n ~k ~f)
        ((k * f) + f + 1)

let () =
  let arg i default =
    if Array.length Sys.argv > i then int_of_string Sys.argv.(i) else default
  in
  plan ~k:(arg 1 6) ~f:(arg 2 2) ~n:(arg 3 7) ~capacity:(arg 4 4)

(* Quickstart: emulate a fault-tolerant register over five simulated
   crash-prone servers with the paper's Algorithm 2, write to it, read
   from it, crash servers up to the tolerance threshold, and keep going.

   Run with: dune exec examples/quickstart.exe *)

open Regemu_bounds
open Regemu_objects
open Regemu_sim
open Regemu_core

let () =
  (* Two writers, one tolerated crash, five servers. *)
  let p = Params.make_exn ~k:2 ~f:1 ~n:5 in
  Fmt.pr "Creating an f-tolerant register: %a@." Params.pp p;
  Fmt.pr "Algorithm 2 needs %d base registers here (lower bound: %d).@.@."
    (Formulas.register_upper_bound p)
    (Formulas.register_lower_bound p);

  let sim = Sim.create ~n:p.n () in
  let alice = Sim.new_client sim in
  let bob = Sim.new_client sim in
  let reader = Sim.new_client sim in
  let reg = Algorithm2.factory.make sim p ~writers:[ alice; bob ] in

  (* The environment: a seeded random (fair) scheduler. *)
  let policy = Policy.uniform (Rng.create 2024) in
  let run call = Driver.finish_call_exn sim policy ~budget:50_000 call in

  ignore (run (reg.write alice (Value.Str "hello")));
  Fmt.pr "alice wrote %S@." "hello";
  Fmt.pr "reader sees %a@.@." Value.pp (run (reg.read reader));

  (* Crash one server — within the tolerance threshold. *)
  Sim.crash_server sim (Id.Server.of_int 0);
  Fmt.pr "server s0 crashed (f=%d tolerated)@." p.f;

  ignore (run (reg.write bob (Value.Str "world")));
  Fmt.pr "bob wrote %S despite the crash@." "world";
  Fmt.pr "reader sees %a@.@." Value.pp (run (reg.read reader));

  (* The history is WS-Regular, as Theorem 3 promises. *)
  let history = Regemu_history.History.of_trace (Sim.trace sim) in
  Fmt.pr "history:@.%a@." Regemu_history.History.pp history;
  Fmt.pr "WS-Regular: %a@." Regemu_history.Ws_check.verdict_pp
    (Regemu_history.Ws_check.check_ws_regular history);
  Fmt.pr "base objects used: %d@."
    (Id.Obj.Set.cardinal (Sim.used_objects sim))

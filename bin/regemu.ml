(* regemu — command-line front end for the register-emulation
   reproduction: run any experiment from the paper with chosen
   parameters, or drive an emulation through a workload and check its
   history. *)

open Cmdliner
open Regemu_bounds
open Regemu_harness
module Json = Regemu_obs.Json

let pr_report r = Fmt.pr "%a@." Report.pp r

(* common args *)
let k_arg = Arg.(value & opt int 5 & info [ "k" ] ~doc:"Number of writers.")
let f_arg = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Failure threshold.")
let n_arg = Arg.(value & opt int 6 & info [ "n" ] ~doc:"Number of servers.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic RNG seed.")

let params_of k f n =
  match Params.make ~k ~f ~n with
  | Ok p -> Ok p
  | Error e -> Error (`Msg ("invalid parameters: " ^ e))

let exit_of = function
  | Ok () -> 0
  | Error (`Msg m) ->
      Fmt.epr "error: %s@." m;
      1

let factories =
  [
    ("algorithm2", Regemu_core.Algorithm2.factory);
    ("abd-max", Regemu_baselines.Abd_max.factory);
    ("abd-cas", Regemu_baselines.Abd_cas.factory);
    ("abd-max-atomic", Regemu_baselines.Abd_max_atomic.factory);
    ("layered", Regemu_baselines.Layered.factory);
    ("naive-reg", Regemu_baselines.Naive_reg.factory);
    ("waitall-reg", Regemu_baselines.Waitall_reg.factory);
  ]

let algo_arg =
  Arg.(
    value
    & opt (enum (List.map (fun (n, f) -> (n, (n, f))) factories))
        ("algorithm2", Regemu_core.Algorithm2.factory)
    & info [ "algo" ] ~doc:"Emulation algorithm.")

(* --- table1 ----------------------------------------------------------- *)

let markdown_arg =
  Arg.(value & flag & info [ "markdown" ] ~doc:"Render as a markdown table.")

let table1_cmd =
  let run seed markdown =
    let report = Table1.report (Table1.compute ~seed ()) in
    if markdown then print_string (Report.to_markdown report)
    else pr_report report;
    0
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"Reproduce Table 1: object counts per base-object type.")
    Term.(const run $ seed_arg $ markdown_arg)

(* --- fig1 ------------------------------------------------------------- *)

let fig1_cmd =
  let run k f n =
    exit_of
      (Result.map
         (fun p -> Fmt.pr "%s@." (Figures.figure1 ~params:p ()))
         (params_of k f n))
  in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Reproduce Figure 1: the register layout.")
    Term.(const run $ k_arg $ f_arg $ n_arg)

(* --- fig2 ------------------------------------------------------------- *)

let fig2_cmd =
  let run f =
    exit_of
      (Result.map_error
         (fun e -> `Msg e)
         (Result.map (Fmt.pr "%s@.") (Figures.figure2 ~f ())))
  in
  Cmd.v
    (Cmd.info "fig2"
       ~doc:
         "Reproduce Figure 2: the Lemma 4 schedule that breaks the naive \
          2f+1-register algorithm.")
    Term.(const run $ f_arg)

(* --- lemma1 ------------------------------------------------------------ *)

let lemma1_cmd =
  let run (_name, factory) k f n seed =
    exit_of
      (Result.bind (params_of k f n) (fun p ->
           match Theorems.lemma1 ~params:p ~factory ~seed () with
           | Ok r ->
               pr_report r;
               Ok ()
           | Error e -> Error (`Msg e)))
  in
  Cmd.v
    (Cmd.info "lemma1"
       ~doc:
         "Run the Lemma 1 adversarial construction against an emulation and \
          report the covering growth.")
    Term.(const run $ algo_arg $ k_arg $ f_arg $ n_arg $ seed_arg)

let timeline_cmd =
  let run (name, factory) k f n seed =
    exit_of
      (Result.bind (params_of k f n) (fun p ->
           match Regemu_adversary.Lowerbound.execute factory p ~seed () with
           | Error e -> Error (`Msg e)
           | Ok run ->
               Fmt.pr
                 "Covering timeline under Ad_i (%s at %a, seed %d):@.%s@."
                 name Params.pp p seed
                 (Timeline.render run.trace);
               Ok ()))
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "ASCII chart of |Cov(t)| over an adversarial run: the staircase \
          that forces the space bound.")
    Term.(const run $ algo_arg $ k_arg $ f_arg $ n_arg $ seed_arg)

(* --- theorem sweeps ----------------------------------------------------- *)

let thm1_cmd =
  let n_max =
    Arg.(
      value
      & opt (some int) None
      & info [ "n-max" ] ~doc:"Largest server count to sweep to.")
  in
  let run k f n_max =
    pr_report (Theorems.theorem1_sweep ~k ~f ?n_max ());
    0
  in
  Cmd.v
    (Cmd.info "thm1" ~doc:"Sweep the Theorem 1/3 register bounds over n.")
    Term.(const run $ k_arg $ f_arg $ n_max)

let thm2_cmd =
  let ks =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8; 16 ]
      & info [ "ks" ] ~doc:"Writer counts to evaluate.")
  in
  let run ks =
    pr_report (Theorems.theorem2 ~ks);
    0
  in
  Cmd.v
    (Cmd.info "thm2"
       ~doc:"Theorem 2: k-writer max-register needs (and our construction \
             uses) k registers.")
    Term.(const run $ ks)

let thm5_cmd =
  let run f =
    exit_of
      (Result.map_error
         (fun e -> `Msg e)
         (Result.map (Fmt.pr "%s@.") (Theorems.theorem5 ~f)))
  in
  Cmd.v
    (Cmd.info "thm5"
       ~doc:"Theorem 5: the partitioning impossibility at n = 2f, executed.")
    Term.(const run $ f_arg)

let inversion_cmd =
  let run () =
    exit_of
      (Result.map_error
         (fun e -> `Msg e)
         (Result.map (Fmt.pr "%s@.") (Theorems.inversion ())))
  in
  Cmd.v
    (Cmd.info "inversion"
       ~doc:
         "The new/old read inversion: why atomicity needs readers that \
          write.")
    Term.(const run $ const ())

let thm6_cmd =
  let run k f =
    pr_report (Theorems.theorem6 ~k ~f);
    (match Theorems.theorem6_adversarial ~k ~f ~seed:42 with
    | Ok r -> pr_report r
    | Error e -> Fmt.epr "adversarial witness failed: %s@." e);
    0
  in
  Cmd.v
    (Cmd.info "thm6" ~doc:"Theorem 6: per-server register counts at n=2f+1.")
    Term.(const run $ k_arg $ f_arg)

let thm7_cmd =
  let caps =
    Arg.(
      value
      & opt (list int) [ 1; 2; 3; 4; 6; 12 ]
      & info [ "capacities" ] ~doc:"Per-server capacities to evaluate.")
  in
  let run k f caps =
    pr_report (Theorems.theorem7 ~k ~f ~capacities:caps);
    0
  in
  Cmd.v
    (Cmd.info "thm7"
       ~doc:"Theorem 7: minimum server count under bounded per-server storage.")
    Term.(const run $ k_arg $ f_arg $ caps)

let plan_cmd =
  let capacity =
    Arg.(
      value & opt int 4
      & info [ "capacity" ] ~doc:"Registers each server can store.")
  in
  let run k f n capacity =
    exit_of
      (Result.map
         (fun p ->
           Fmt.pr "emulating a %d-writer register, tolerating %d of %d \
                   servers crashing:@."
             p.Params.k p.Params.f p.Params.n;
           Fmt.pr "  with max-register or CAS servers: %d objects@."
             (Formulas.maxreg_bound p);
           Fmt.pr "  with plain registers: %d..%d objects (Theorems 1/3), \
                   z=%d writers per set@."
             (Formulas.register_lower_bound p)
             (Formulas.register_upper_bound p)
             (Formulas.z p);
           Fmt.pr "  per-server capacity %d needs at least %d servers \
                   (Theorem 7)@."
             capacity
             (Formulas.min_servers ~k:p.Params.k ~f:p.Params.f ~capacity);
           Fmt.pr "  extra servers stop helping at n=%d (cost %d)@."
             (Formulas.saturation_n ~k:p.Params.k ~f:p.Params.f)
             ((p.Params.k * p.Params.f) + p.Params.f + 1);
           let budget = capacity * p.Params.n in
           match Formulas.max_writers ~f:p.Params.f ~n:p.Params.n ~budget with
           | Some kmax ->
               Fmt.pr
                 "  the cluster's total register budget (%d) supports at \
                  most %d writers@."
                 budget kmax
           | None ->
               Fmt.pr
                 "  the cluster's total register budget (%d) supports no \
                  writer at all@."
                 budget)
         (params_of k f n))
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Capacity planning with the paper's bounds.")
    Term.(const run $ k_arg $ f_arg $ n_arg $ capacity)

let thm8_cmd =
  let run k f n seed =
    exit_of
      (Result.bind (params_of k f n) (fun p ->
           match Theorems.theorem8 ~params:p ~seed () with
           | Ok r ->
               pr_report r;
               Ok ()
           | Error e -> Error (`Msg e)))
  in
  Cmd.v
    (Cmd.info "thm8"
       ~doc:"Theorem 8: resource use grows while point contention stays 1.")
    Term.(const run $ k_arg $ f_arg $ n_arg $ seed_arg)

let classification_cmd =
  let run k f n =
    exit_of
      (Result.map
         (fun p ->
           pr_report
             (Theorems.classification ~k:p.Params.k ~f:p.Params.f ~n:p.Params.n))
         (params_of k f n))
  in
  Cmd.v
    (Cmd.info "classification"
       ~doc:
         "The paper's space-based classification vs Herlihy's consensus \
          hierarchy.")
    Term.(const run $ k_arg $ f_arg $ n_arg)

let rspace_cmd =
  let readers =
    Arg.(
      value
      & opt (list int) [ 0; 1; 2; 4; 8 ]
      & info [ "readers" ] ~doc:"Reader counts to evaluate.")
  in
  let run k f n readers =
    exit_of
      (Result.map
         (fun p ->
           pr_report
             (Theorems.reader_space ~k:p.Params.k ~f:p.Params.f ~n:p.Params.n
                ~readers_list:readers))
         (params_of k f n))
  in
  Cmd.v
    (Cmd.info "rspace"
       ~doc:
         "Does atomicity cost space per reader? (the paper's closing \
          question, measured)")
    Term.(const run $ k_arg $ f_arg $ n_arg $ readers)

let alg1_cmd =
  let writers =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "writers" ] ~doc:"Concurrency levels to evaluate.")
  in
  let ops =
    Arg.(
      value & opt int 8
      & info [ "ops" ] ~doc:"write-max operations per writer.")
  in
  let run writers ops seed =
    pr_report (Theorems.algorithm1_time ~writers_list:writers ~ops_per_writer:ops ~seed);
    0
  in
  Cmd.v
    (Cmd.info "alg1"
       ~doc:"Algorithm 1: CAS cost of the max-register emulation.")
    Term.(const run $ writers $ ops $ seed_arg)

let latency_cmd =
  let rounds =
    Arg.(value & opt int 2 & info [ "rounds" ] ~doc:"Write+read rounds.")
  in
  let run k f n rounds =
    exit_of
      (Result.map
         (fun p -> pr_report (Latency.report p (Latency.compute p ~rounds)))
         (params_of k f n))
  in
  Cmd.v
    (Cmd.info "latency"
       ~doc:"Compare operation latencies (in scheduler steps) across \
             emulations.")
    Term.(const run $ k_arg $ f_arg $ n_arg $ rounds)

(* --- run: drive an emulation through a workload ------------------------- *)

let fuzz_cmd =
  let algo = algo_arg in
  let runs =
    Arg.(value & opt int 50 & info [ "runs" ] ~doc:"Number of seeded runs.")
  in
  let scenario =
    Arg.(
      value
      & opt
          (enum
             [
               ("sequential", Regemu_workload.Fuzz.Sequential);
               ("concurrent", Regemu_workload.Fuzz.Concurrent_reads);
               ("chaos", Regemu_workload.Fuzz.Chaos);
             ])
          Regemu_workload.Fuzz.Concurrent_reads
      & info [ "scenario" ] ~doc:"Workload shape.")
  in
  let procrastinate =
    Arg.(
      value & flag
      & info [ "procrastinate" ]
          ~doc:
            "Hold ~40% of responses for 15 steps (the covering-adversary \
             pattern); finds bugs uniform schedules never hit.")
  in
  let run (name, factory) k f n runs scenario seed procrastinate =
    exit_of
      (Result.map
         (fun p ->
           let policy rng =
             if procrastinate then
               Regemu_sim.Policy.procrastinating rng ~hold_percent:40
                 ~hold_steps:15
             else Regemu_sim.Policy.uniform rng
           in
           let o =
             Regemu_workload.Fuzz.run factory p ~policy ~scenario ~runs ~seed
               ()
           in
           Fmt.pr "fuzz %s at %a (%a%s): %a@." name Params.pp p
             Regemu_workload.Fuzz.scenario_pp scenario
             (if procrastinate then ", procrastinating" else "")
             Regemu_workload.Fuzz.outcome_pp o;
           match o.first_bad_history with
           | Some h ->
               Fmt.pr "first violating run:@.%a@." Regemu_history.History.pp h
           | None -> ())
         (params_of k f n))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Run many seeded random schedules and tally checker verdicts.")
    Term.(
      const run $ algo $ k_arg $ f_arg $ n_arg $ runs $ scenario $ seed_arg
      $ procrastinate)

let explore_cmd =
  let budget =
    Arg.(
      value & opt int 2_000_000
      & info [ "budget" ]
          ~doc:
            "Maximum events fired (sampling mode) or transitions executed \
             (--exhaustive) across all replays.")
  in
  let writes =
    Arg.(
      value & opt int 1
      & info [ "writes" ] ~doc:"One write per writer; writers = this count.")
  in
  let eager =
    Arg.(
      value & flag
      & info [ "eager" ]
          ~doc:"Invoke operations concurrently instead of sequentially.")
  in
  let crashes =
    Arg.(
      value & opt int 0
      & info [ "crashes" ]
          ~doc:"Also explore crash timings, up to this many crashes.")
  in
  let exhaustive_arg =
    Arg.(
      value & flag
      & info [ "exhaustive" ]
          ~doc:
            "Bounded-exhaustive search with dynamic partial-order reduction \
             instead of enumerating every enabled transition at every state: \
             backtrack points are planted only where two transitions \
             genuinely race, so the reduced search covers every \
             Mazurkiewicz trace class with far fewer executions.")
  in
  let brute_arg =
    Arg.(
      value & flag
      & info [ "brute" ]
          ~doc:
            "With --exhaustive: disable the reduction (every enabled \
             transition becomes a backtrack point) — the differential \
             baseline the DPOR run is checked against in the tests.")
  in
  let ops_each_arg =
    Arg.(
      value & opt int 1
      & info [ "ops-each" ]
          ~doc:"Write operations per writer and reads per reader.")
  in
  let cert_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cert-out" ] ~docv:"FILE"
          ~doc:
            "With --exhaustive: write the regemu-cert/1 certificate (config, \
             transition counts, pruning ratio, verdict) to $(docv).")
  in
  let fuzz_cg_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuzz-cg" ] ~docv:"N"
          ~doc:
            "Coverage-guided schedule fuzzing: run $(docv) simulations of \
             the live DST stack, mutating branch-choice traces from a \
             corpus and keeping the ones that reach new schedule-edge \
             coverage or new schedule digests.")
  in
  let profile_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("quiet", Regemu_dst.Dst_fuzz.Quiet);
               ("chaos", Regemu_dst.Dst_fuzz.Chaos);
               ("hunt", Regemu_dst.Dst_fuzz.Hunt);
             ])
          Regemu_dst.Dst_fuzz.Quiet
      & info [ "profile" ]
          ~doc:"Fault profile for --fuzz-cg (as in $(b,regemu dst)).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some dir) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Seed the --fuzz-cg corpus with the choice traces of every \
             regemu-dst/1 replay file in $(docv) (each is executed first).")
  in
  let readers_arg =
    Arg.(
      value & opt int 2
      & info [ "readers" ] ~doc:"Reader fibers for --fuzz-cg.")
  in
  let ops_arg =
    Arg.(
      value & opt int 8
      & info [ "ops" ] ~doc:"Operations per client fiber for --fuzz-cg.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the campaign report (regemu-cgfuzz/1 or regemu-cert/1) \
                to $(docv).")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Bounded smoke suite (used by dune runtest): a tiny exhaustive \
             DPOR run whose certificate must round-trip and validate, plus \
             a 200-schedule coverage-guided burst on the quiet profile that \
             must find no violations.")
  in
  let live_algo_of_name = function
    | "algorithm2" -> Some Regemu_live.Live_bench.Alg2
    | "abd-max" | "abd-max-atomic" -> Some Regemu_live.Live_bench.Abd
    | _ -> None
  in
  let scenario_of factory p ~eager ~crashes ~ops_each =
    Regemu_mcheck.Explore.emulation_scenario factory p
      ~mode:
        (if eager then Regemu_mcheck.Explore.Eager
         else Regemu_mcheck.Explore.Sequential)
      ~crashes
      ~writer_ops:
        (List.init p.Params.k (fun i ->
             List.init ops_each (fun j ->
                 Regemu_objects.Value.Str (Fmt.str "v%d.%d" i j))))
      ~readers:1 ~reads_each:ops_each ()
  in
  let cert_config name p ~eager ~crashes ~ops_each ~budget =
    {
      Regemu_explore.Cert.algo = name;
      k = p.Params.k;
      f = p.Params.f;
      n = p.Params.n;
      mode = (if eager then "eager" else "sequential");
      writer_ops = List.init p.Params.k (fun _ -> ops_each);
      readers = 1;
      reads_each = ops_each;
      crashes;
      max_explored = budget;
    }
  in
  let run_exhaustive (name, factory) p ~eager ~crashes ~ops_each ~budget
      ~brute ~cert_out ~json =
    let scenario = scenario_of factory p ~eager ~crashes ~ops_each in
    (* the naive baseline violates the pending-write invariants by
       design; keep the checks for the algorithms that promise them *)
    let check_invariants = name <> "naive-reg" in
    let stats =
      Regemu_mcheck.Dpor.run ~dpor:(not brute) ~sleep:(not brute)
        ~check_invariants scenario ~max_explored:budget
    in
    Fmt.pr "explore --exhaustive %s at %a:@.%a@." name Params.pp p
      Regemu_mcheck.Dpor.stats_pp stats;
    let cert =
      Regemu_explore.Cert.make
        ~config:(cert_config name p ~eager ~crashes ~ops_each ~budget)
        ~dpor:(not brute) ~sleep:(not brute) stats
    in
    Fmt.pr "%a@." Regemu_explore.Cert.pp cert;
    let cert_json = Regemu_explore.Cert.to_json cert in
    List.iter
      (fun path ->
        Json.to_file path cert_json;
        Fmt.pr "wrote certificate to %s@." path)
      (List.filter_map Fun.id [ cert_out; json ]);
    match Regemu_explore.Cert.validate cert with
    | Error m ->
        Fmt.epr "error: certificate invalid: %s@." m;
        1
    | Ok () -> if cert.Regemu_explore.Cert.verdict = "violations-found" then 1 else 0
  in
  let load_corpus dir =
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.filter_map (fun f ->
           let path = Filename.concat dir f in
           match Regemu_dst.Dst_fuzz.read_replay path with
           | Ok spec ->
               Fmt.pr "corpus: %s (%d-entry trace)@." path
                 (Array.length spec.Regemu_dst.Dst_fuzz.r_choices);
               Some spec.Regemu_dst.Dst_fuzz.r_choices
           | Error m ->
               Fmt.epr "warning: skipping %s: %s@." path m;
               None)
  in
  let run_fuzz_cg name ~writers ~readers ~f ~n ~ops ~seed ~profile ~corpus
      ~budget ~json =
    match live_algo_of_name name with
    | None ->
        Fmt.epr
          "error: --fuzz-cg drives the live stack; use --algo algorithm2 or \
           --algo abd-max@.";
        1
    | Some algo ->
        let base =
          {
            (Regemu_dst.Dst.default_config ~seed) with
            Regemu_dst.Dst.algo;
            writers;
            readers;
            f;
            n;
            ops_per_client = ops;
          }
        in
        let init = match corpus with None -> [] | Some d -> load_corpus d in
        let report =
          Regemu_explore.Cgfuzz.fuzz ~init ~profile ~base ~budget ()
        in
        Fmt.pr "%a@." Regemu_explore.Cgfuzz.report_pp report;
        Option.iter
          (fun path ->
            Json.to_file path (Regemu_explore.Cgfuzz.report_json report);
            Fmt.pr "wrote report to %s@." path)
          json;
        (match profile with
        | Regemu_dst.Dst_fuzz.Hunt -> 0
        | _ -> if report.Regemu_explore.Cgfuzz.violations = [] then 0 else 1)
  in
  let run_smoke ~seed =
    (* 1: tiny exhaustive run; certificate must round-trip and validate *)
    let p = Params.make_exn ~k:1 ~f:1 ~n:3 in
    let scenario =
      scenario_of Regemu_baselines.Abd_max.factory p ~eager:false ~crashes:0
        ~ops_each:1
    in
    let stats = Regemu_mcheck.Dpor.run scenario ~max_explored:200_000 in
    let cert =
      Regemu_explore.Cert.make
        ~config:
          (cert_config "abd-max" p ~eager:false ~crashes:0 ~ops_each:1
             ~budget:200_000)
        ~dpor:true ~sleep:true stats
    in
    let roundtrip =
      match
        Regemu_explore.Cert.of_json (Regemu_explore.Cert.to_json cert)
      with
      | Error m -> Error m
      | Ok c -> Result.map (fun () -> c) (Regemu_explore.Cert.validate c)
    in
    let cert_ok =
      match roundtrip with
      | Ok c -> c = cert && c.Regemu_explore.Cert.verdict = "verified-clean"
      | Error _ -> false
    in
    Fmt.pr "smoke exhaustive: %a@." Regemu_explore.Cert.pp cert;
    Fmt.pr "smoke certificate round-trip: %s@."
      (match roundtrip with
      | Ok _ when cert_ok -> "ok"
      | Ok _ -> "MISMATCH"
      | Error m -> "INVALID: " ^ m);
    (* 2: a coverage-guided burst on the quiet profile must stay clean *)
    let base =
      {
        (Regemu_dst.Dst.default_config ~seed) with
        Regemu_dst.Dst.readers = 1;
        ops_per_client = 4;
      }
    in
    let report =
      Regemu_explore.Cgfuzz.fuzz ~profile:Regemu_dst.Dst_fuzz.Quiet ~base
        ~budget:200 ()
    in
    Fmt.pr "smoke cgfuzz: %a@." Regemu_explore.Cgfuzz.report_pp report;
    let cg_ok =
      report.Regemu_explore.Cgfuzz.violations = []
      && report.Regemu_explore.Cgfuzz.schedules > 1
    in
    if cert_ok && cg_ok then 0
    else begin
      Fmt.epr "error: explore smoke failed (cert=%b cgfuzz=%b)@." cert_ok
        cg_ok;
      1
    end
  in
  let run (name, factory) f n budget writes eager crashes exhaustive brute
      ops_each cert_out fuzz_cg profile corpus readers ops json smoke seed =
    if smoke then run_smoke ~seed
    else
      match fuzz_cg with
      | Some cg_budget ->
          run_fuzz_cg name ~writers:writes ~readers ~f ~n ~ops ~seed ~profile
            ~corpus ~budget:cg_budget ~json
      | None ->
          exit_of
            (Result.map
               (fun p ->
                 if exhaustive || brute then
                   exit
                     (run_exhaustive (name, factory) p ~eager ~crashes
                        ~ops_each ~budget ~brute ~cert_out ~json)
                 else begin
                   let scenario =
                     scenario_of factory p ~eager ~crashes ~ops_each
                   in
                   let r =
                     Regemu_mcheck.Explore.run scenario ~max_fired:budget
                   in
                   Fmt.pr "explore %s at %a: %a@." name Params.pp p
                     Regemu_mcheck.Explore.result_pp r;
                   List.iter
                     (fun h ->
                       Fmt.pr "violating schedule:@.%a@."
                         Regemu_history.History.pp h)
                     r.ws_safe_violations
                 end)
               (params_of writes f n))
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Systematically explore schedules: enumerate or DPOR-reduce small \
          scenarios exhaustively (--exhaustive, with a regemu-cert/1 \
          certificate), or coverage-guided-fuzz the live DST stack \
          (--fuzz-cg).")
    Term.(
      const run $ algo_arg $ f_arg $ n_arg $ budget $ writes $ eager
      $ crashes $ exhaustive_arg $ brute_arg $ ops_each_arg $ cert_out_arg
      $ fuzz_cg_arg $ profile_arg $ corpus_arg $ readers_arg $ ops_arg
      $ json_arg $ smoke_arg $ seed_arg)

let run_cmd =
  let algo =
    Arg.(
      value
      & opt (enum (List.map (fun (n, f) -> (n, (n, f))) factories))
          ("algorithm2", Regemu_core.Algorithm2.factory)
      & info [ "algo" ] ~doc:"Emulation algorithm to drive.")
  in
  let rounds =
    Arg.(value & opt int 2 & info [ "rounds" ] ~doc:"Rounds of writes.")
  in
  let readers =
    Arg.(value & opt int 2 & info [ "readers" ] ~doc:"Concurrent readers.")
  in
  let crashes =
    Arg.(
      value & opt int 0
      & info [ "crashes" ] ~doc:"Servers to crash (at most f).")
  in
  let run (name, factory) k f n rounds readers crashes seed =
    exit_of
      (Result.bind (params_of k f n) (fun p ->
           match
             Regemu_workload.Scenario.concurrent_reads factory p ~rounds
               ~readers ~crashes ~seed ()
           with
           | Error e ->
               Error (`Msg (Fmt.str "%a" Regemu_workload.Scenario.error_pp e))
           | Ok r ->
               Fmt.pr "algorithm: %s at %a, seed %d@." name Params.pp p seed;
               Fmt.pr "history:@.%a@." Regemu_history.History.pp r.history;
               Fmt.pr "objects used: %d@." r.objects_used;
               Fmt.pr "WS-Regular: %a@."
                 Regemu_history.Ws_check.verdict_pp
                 (Regemu_history.Ws_check.check_ws_regular r.history);
               Fmt.pr "WS-Safe: %a@."
                 Regemu_history.Ws_check.verdict_pp
                 (Regemu_history.Ws_check.check_ws_safe r.history);
               Ok ()))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Drive an emulation through a workload (sequential writes, \
          concurrent readers, optional crashes) and check its history.")
    Term.(
      const run $ algo $ k_arg $ f_arg $ n_arg $ rounds $ readers $ crashes
      $ seed_arg)

let sweep_cmd =
  let seeds =
    Arg.(value & opt int 3 & info [ "seeds" ] ~doc:"Seeded runs per point.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~doc:"Write CSV to this file instead of stdout.")
  in
  let run seeds csv =
    let points = Sweep.run ~grid:Sweep.default_grid ~seeds () in
    let out = Sweep.to_csv points in
    (match csv with
    | Some path ->
        let oc = open_out path in
        output_string oc out;
        close_out oc;
        Fmt.pr "wrote %d points to %s@." (List.length points) path
    | None -> print_string out);
    0
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Measure bounds, usage, coverage, and latency over a (k, f, n) \
          grid; CSV output for plotting.")
    Term.(const run $ seeds $ csv)

let netabd_cmd =
  let run k f n seed =
    pr_report (Wire.abd_messages ~fs:[ 1; 2; 3; 4 ] ~ops:6 ~seed);
    pr_report
      (Wire.alg2_messages
         ~configs:[ (1, 1, 3); (2, 1, 4); (3, 1, 5); (3, 2, 7) ]
         ~seed);
    match Wire.staircase ~k ~f ~n ~seed with
    | Ok r ->
        pr_report r;
        0
    | Error e ->
        Fmt.epr "error: %s@." e;
        1
  in
  Cmd.v
    (Cmd.info "netabd"
       ~doc:
         "Message complexity on the wire, and the lower-bound staircase \
          produced by an adversarial router.")
    Term.(const run $ k_arg $ f_arg $ n_arg $ seed_arg)

let verify_cmd =
  let run seed =
    let summary = Verify.run ~seed in
    Fmt.pr "%a" Verify.summary_pp summary;
    if summary.failed = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Re-establish every headline claim of the reproduction and report \
          PASS/FAIL per claim.")
    Term.(const run $ seed_arg)

let all_cmd =
  let run seed =
    pr_report (Table1.report (Table1.compute ~seed ()));
    Fmt.pr "%s@." (Figures.figure1 ());
    pr_report (Theorems.load_balance ~k:5 ~f:2 ~n:6 ~rounds:2 ~seed);
    (match Figures.figure2 ~f:2 () with
    | Ok s -> Fmt.pr "%s@." s
    | Error e -> Fmt.epr "fig2: %s@." e);
    (match Theorems.lemma1 ~seed () with
    | Ok r -> pr_report r
    | Error e -> Fmt.epr "lemma1: %s@." e);
    pr_report (Theorems.theorem1_sweep ~k:5 ~f:2 ());
    pr_report (Theorems.theorem2 ~ks:[ 1; 2; 4; 8; 16 ]);
    (match Theorems.theorem5 ~f:2 with
    | Ok s -> Fmt.pr "%s@." s
    | Error e -> Fmt.epr "thm5: %s@." e);
    pr_report (Theorems.theorem6 ~k:4 ~f:2);
    (match Theorems.theorem6_adversarial ~k:4 ~f:2 ~seed with
    | Ok r -> pr_report r
    | Error e -> Fmt.epr "thm6 adversarial: %s@." e);
    (match Theorems.inversion () with
    | Ok s -> Fmt.pr "%s@." s
    | Error e -> Fmt.epr "inversion: %s@." e);
    pr_report (Theorems.theorem7 ~k:6 ~f:2 ~capacities:[ 1; 2; 3; 4; 6; 12 ]);
    (match Theorems.theorem8 ~seed () with
    | Ok r -> pr_report r
    | Error e -> Fmt.epr "thm8: %s@." e);
    pr_report (Theorems.classification ~k:5 ~f:2 ~n:6);
    pr_report (Theorems.reader_space ~k:3 ~f:1 ~n:5 ~readers_list:[ 0; 1; 2; 4; 8 ]);
    pr_report
      (Theorems.algorithm1_time ~writers_list:[ 1; 2; 4; 8 ] ~ops_per_writer:8
         ~seed);
    pr_report (Theorems.maxreg_comparison ~k:4 ~capacity:64 ~ops:6 ~seed);
    let p = Params.make_exn ~k:3 ~f:1 ~n:5 in
    pr_report (Latency.report p (Latency.compute p ~rounds:2));
    pr_report (Wire.abd_messages ~fs:[ 1; 2; 3; 4 ] ~ops:6 ~seed);
    pr_report
      (Wire.alg2_messages
         ~configs:[ (1, 1, 3); (2, 1, 4); (3, 1, 5); (3, 2, 7) ]
         ~seed);
    (match Wire.staircase ~k:5 ~f:2 ~n:6 ~seed with
    | Ok r -> pr_report r
    | Error e -> Fmt.epr "staircase: %s@." e);
    0
  in
  Cmd.v
    (Cmd.info "all"
       ~doc:"Regenerate every table and figure (no micro-benchmarks).")
    Term.(const run $ seed_arg)

(* --- observability plumbing ---------------------------------------------- *)

(* shared --trace/--trace-sample/--metrics handling for live, chaos,
   and dst: build the run's Sink.t, then write the requested files
   after the run (even a failing one — that trace is the useful one) *)
module Obs_cli = struct
  open Regemu_obs

  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record a structured trace of the run and write it as \
                Chrome trace_event JSON (regemu-trace/1 schema).  Open it \
                at chrome://tracing or ui.perfetto.dev, or render it with \
                $(b,regemu trace --in) $(docv) $(b,--timeline).")

  (* full sampling costs ~30% throughput on a saturated live cluster
     (every message takes the recorder path), so [live] defaults to a
     coarse 1-in-64; the deterministic testers run in virtual time and
     default to recording everything *)
  let sample_arg ~default =
    Arg.(
      value & opt int default
      & info [ "trace-sample" ] ~docv:"N"
          ~doc:
            (Fmt.str
               "Keep 1 in $(docv) operation spans and message events.  \
                Control events — retries, faults, checker verdict flips, \
                unavailability — are always recorded.  1 records \
                everything.  Default %d." default))

  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write the run's metrics registry as a regemu-metrics/1 \
                JSON snapshot.")

  let with_sink ~trace ~sample ~metrics f =
    if sample <= 0 then begin
      Fmt.epr "error: --trace-sample must be positive@.";
      1
    end
    else
      let tr =
        Option.map
          (fun _ -> Trace.create ~ops_every:sample ~msgs_every:sample ())
          trace
      in
      let mx = Option.map (fun _ -> Metrics.create ()) metrics in
      let code = f (Regemu_live.Sink.make ?trace:tr ?metrics:mx ()) in
      match
        Option.iter
          (fun path ->
            let t = Option.get tr in
            Json.to_file path (Export.chrome_json t);
            Fmt.pr "wrote trace to %s (%d events, %d lost to ring overwrite)@."
              path (Trace.recorded t) (Trace.dropped t))
          trace;
        Option.iter
          (fun path ->
            Json.to_file path (Metrics.snapshot (Option.get mx));
            Fmt.pr "wrote metrics to %s@." path)
          metrics
      with
      | exception Sys_error m ->
          Fmt.epr "error: %s@." m;
          1
      | () -> code
end

(* --- live --------------------------------------------------------------- *)

(* One source of truth for live algorithm names: parse through
   Live_bench.algo_of_name, so an unknown name is rejected with the
   valid list quoted — never silently defaulted — and a newly
   registered algorithm reaches every command that uses this conv. *)
let live_algo_conv =
  let parse s =
    match Regemu_live.Live_bench.algo_of_name s with
    | Some a -> Ok a
    | None ->
        Error
          (`Msg
             (Fmt.str "unknown algorithm %S; valid: %s" s
                (String.concat ", " Regemu_live.Live_bench.algo_names)))
  in
  Arg.conv
    (parse, fun ppf a -> Fmt.string ppf (Regemu_live.Live_bench.algo_name a))

let live_cmd =
  let open Regemu_live in
  let algo_arg =
    Arg.(
      value
      & opt live_algo_conv Live_bench.Abd
      & info [ "algo" ]
          ~doc:"Protocol to run: $(b,abd), $(b,abd-wb), $(b,algorithm2), or \
                $(b,cds).")
  in
  let bench_arg =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:"Benchmark mode: quiet and chaos runs of every protocol.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Bounded, seed-fixed smoke suite (used by dune runtest).")
  in
  let chaos_arg =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:"Inject crash/restart faults plus message delays and \
                duplication.")
  in
  let readers_arg =
    Arg.(
      value & opt int 3
      & info [ "readers" ] ~doc:"Number of reader threads.")
  in
  let ops_arg =
    Arg.(
      value & opt int 150
      & info [ "ops" ] ~doc:"Operations per client thread.")
  in
  let couriers_arg =
    Arg.(
      value & opt int 3
      & info [ "couriers" ] ~doc:"Transport delivery threads.")
  in
  let backend_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("threads", Transport.Threads);
               ("domains", Transport.Domains);
               ("socket", Transport.Socket);
             ])
          Transport.Threads
      & info [ "backend" ]
          ~doc:"Message fabric: $(b,threads) (the deterministic in-process \
                courier fabric), $(b,domains) (one OCaml domain per server \
                lane over lock-free rings), or $(b,socket) (forked server \
                processes speaking the binary codec over Unix-domain \
                sockets).  A full $(b,--saturate) sweep ignores this and \
                runs the three-way A/B.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the results as JSON (regemu-live-bench/1 schema; \
                regemu-bench/2 with $(b,--saturate)).")
  in
  let saturate_arg =
    Arg.(
      value & flag
      & info [ "saturate" ]
          ~doc:"Saturation sweep on a quiet non-reordering transport.  The \
                full sweep is the three-way backend A/B: ABD at each client \
                count on the threads, domains, and socket fabrics \
                interleaved, reporting ops/s, latency percentiles, and \
                per-backend speedup over threads.  With $(b,--smoke), a \
                bounded single-backend sweep for CI (honours \
                $(b,--backend)).")
  in
  let reps_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "reps" ] ~docv:"N"
          ~doc:"Repetitions per benchmark point; the median-throughput run \
                is reported.  Defaults to 3 for $(b,--saturate) sweeps \
                (1 with $(b,--smoke)), 1 otherwise.")
  in
  let tail_arg =
    Arg.(
      value & flag
      & info [ "tail" ]
          ~doc:"Tail-latency A/B bench: baseline, unhedged, and hedged arms \
                under a single 10x gray straggler, reporting latency \
                percentiles per arm and the hedged-p99-over-baseline-p99 \
                ratio (regemu-tail/1 schema with $(b,--json)).  Honours \
                $(b,--algo).  With $(b,--smoke), a bounded run for CI.")
  in
  let run bench smoke saturate tail chaos algo k readers f n ops couriers
      backend json seed reps trace sample metrics =
    if tail then
      Obs_cli.with_sink ~trace ~sample ~metrics @@ fun sink ->
      let spec =
        if smoke then Tail_bench.smoke_spec ~backend ~algo ~seed ()
        else Tail_bench.default_spec ~backend ~algo ~seed ()
      in
      (* full tail runs report median-of-5 arms: single-core p99 is
         noisy and a median, not one roll, is the number worth
         committing to BENCH_tail.json *)
      let reps =
        match reps with Some r -> r | None -> if smoke then 1 else 5
      in
      match Tail_bench.run ~sink ~reps spec with
      | exception Invalid_argument m ->
          Fmt.epr "error: %s@." m;
          1
      | o -> (
          Fmt.pr "%a@." Tail_bench.outcome_pp o;
          let doc = Tail_bench.to_json o in
          match Tail_bench.validate_tail_json doc with
          | Error m ->
              Fmt.epr
                "error: emitted document fails the regemu-tail/1 schema \
                 check: %s@."
                m;
              1
          | Ok () -> (
              match Option.iter (fun path -> Json.to_file path doc) json with
              | exception Sys_error m ->
                  Fmt.epr "error: %s@." m;
                  1
              | () ->
                  if Tail_bench.clean o then 0
                  else (
                    Fmt.epr
                      "error: a tail arm failed its consistency checks or \
                       lost operations@.";
                    1)))
    else
    let specs =
      if saturate then
        if smoke then
          Live_bench.saturate_specs ~backend ~clients:[ 2; 4 ]
            ~ops_per_client:40 ~seed ()
        else Live_bench.saturate_ab_specs ~ops_per_client:ops ~seed ()
      else if smoke then Live_bench.smoke_suite ~backend ()
      else if bench then
        List.map
          (fun s -> { s with Live_bench.backend })
          (Live_bench.suite ~ops_per_client:ops ~seed ())
      else
        [
          {
            Live_bench.algo; k; readers; f; n; ops_per_client = ops;
            couriers; chaos; reorder = true; backend; seed;
          };
        ]
    in
    (* full saturation sweeps report median-of-3 per point by default:
       single-core thread throughput is noisy and a median, not one
       roll, is the number worth tracking in BENCH_live.json *)
    let reps =
      match reps with
      | Some r -> r
      | None -> if saturate && not smoke then 3 else 1
    in
    Obs_cli.with_sink ~trace ~sample ~metrics @@ fun sink ->
    match
      if saturate then begin
        (* round-robin the repetitions across the whole sweep so a
           transient machine stall cannot poison one point's reps *)
        let outs = Live_bench.run_sweep_median ~reps ~sink specs in
        List.iter (Fmt.pr "%a@." Live_bench.outcome_pp) outs;
        outs
      end
      else
        List.map
          (fun spec ->
            let o = Live_bench.run_median ~reps ~sink spec in
            Fmt.pr "%a@." Live_bench.outcome_pp o;
            o)
          specs
    with
    | exception Invalid_argument m ->
        Fmt.epr "error: %s@." m;
        1
    | outcomes -> (
        let doc =
          if saturate then Live_bench.saturate_json outcomes
          else Live_bench.to_json outcomes
        in
        match
          if saturate then Live_bench.validate_bench_json doc else Ok ()
        with
        | Error m ->
            Fmt.epr "error: emitted document fails the regemu-bench/2 schema \
                     check: %s@." m;
            1
        | Ok () -> (
            match Option.iter (fun path -> Json.to_file path doc) json with
            | exception Sys_error m ->
                Fmt.epr "error: %s@." m;
                1
            | () ->
                if List.for_all Live_bench.clean outcomes then 0
                else (
                  Fmt.epr
                    "error: a live run failed its online consistency checks@.";
                  1)))
  in
  Cmd.v
    (Cmd.info "live"
       ~doc:
         "Run a real concurrent cluster: server threads, load-generator \
          client threads, fault injection, and online consistency checking.")
    Term.(
      const run $ bench_arg $ smoke_arg $ saturate_arg $ tail_arg $ chaos_arg
      $ algo_arg
      $ Arg.(value & opt int 1 & info [ "k" ] ~doc:"Number of writer threads.")
      $ readers_arg
      $ Arg.(value & opt int 1 & info [ "f" ] ~doc:"Failure threshold.")
      $ Arg.(value & opt int 3 & info [ "n" ] ~doc:"Number of server threads.")
      $ ops_arg $ couriers_arg $ backend_arg $ json_arg $ seed_arg $ reps_arg
      $ Obs_cli.trace_arg
      $ Obs_cli.sample_arg ~default:64
      $ Obs_cli.metrics_arg)

(* --- compare ------------------------------------------------------------- *)

let compare_cmd =
  let open Regemu_live in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Bounded single-load run for CI (used by dune runtest): the \
                light load point, fewer readers, 25 ops per client.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the table as JSON (regemu-compare/1 schema), \
                validated both before the write and re-parsed from the \
                bytes on disk.")
  in
  let reps_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "reps" ] ~docv:"N"
          ~doc:"Repetitions per (algorithm, backend, load) cell; the \
                median-throughput run is reported.  Defaults to 3 \
                (1 with $(b,--smoke)).")
  in
  let run smoke json seed reps trace sample metrics =
    Obs_cli.with_sink ~trace ~sample ~metrics @@ fun sink ->
    let pairs =
      if smoke then Compare_bench.smoke_specs ~seed ()
      else Compare_bench.specs ~seed ()
    in
    let reps =
      match reps with Some r -> r | None -> if smoke then 1 else 3
    in
    match Compare_bench.run ~sink ~reps pairs with
    | exception Invalid_argument m ->
        Fmt.epr "error: %s@." m;
        1
    | rows -> (
        List.iter (Fmt.pr "%a@." Compare_bench.row_pp) rows;
        let doc = Compare_bench.to_json ~seed ~smoke rows in
        match Compare_bench.validate_compare_json doc with
        | Error m ->
            Fmt.epr
              "error: refusing to write: emitted document fails the \
               regemu-compare/1 schema check: %s@."
              m;
            1
        | Ok () -> (
            let persisted =
              match json with
              | None -> Ok ()
              | Some path -> (
                  match Json.to_file path doc with
                  | exception Sys_error m -> Error m
                  | () -> (
                      (* re-validate what actually landed on disk, not
                         the in-memory value we meant to write *)
                      match Json.of_file path with
                      | Error m ->
                          Error (Fmt.str "read-back of %s failed: %s" path m)
                      | Ok disk -> (
                          match Compare_bench.validate_compare_json disk with
                          | Error m ->
                              Error
                                (Fmt.str
                                   "read-back of %s fails the schema check: \
                                    %s"
                                   path m)
                          | Ok () -> Ok ())))
            in
            match persisted with
            | Error m ->
                Fmt.epr "error: %s@." m;
                1
            | Ok () ->
                if Compare_bench.clean rows then 0
                else (
                  Fmt.epr
                    "error: a comparison run failed its online consistency \
                     checks or lost operations@.";
                  1)))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Race the three emulations — ABD, Algorithm 2, and the CDS \
          multi-writer data store — at the same load points on the threads \
          and domains fabrics, and report space (measured resident cells \
          and bytes per server, plus the paper-side formula), throughput, \
          and latency side by side (regemu-compare/1 schema with \
          $(b,--json)).")
    Term.(
      const run $ smoke_arg $ json_arg $ seed_arg $ reps_arg
      $ Obs_cli.trace_arg
      $ Obs_cli.sample_arg ~default:64
      $ Obs_cli.metrics_arg)

(* --- chaos --------------------------------------------------------------- *)

let chaos_cmd =
  let open Regemu_chaos in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Bounded campaign subset (used by dune runtest).")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the campaign's scenarios and exit.")
  in
  let scenario_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Run a single scenario from the campaign.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report as JSON (regemu-chaos/1 schema).")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress per-phase progress lines.")
  in
  let run smoke list scenario json quiet seed trace sample metrics =
    if list then begin
      List.iter
        (fun s ->
          Fmt.pr "%-22s %-10s expect=%-9s %s@." s.Campaign.name
            (Campaign.algo_name s.Campaign.algo)
            (Campaign.expectation_name s.Campaign.expect)
            s.Campaign.descr)
        (Campaign.campaign ~seed);
      0
    end
    else
      let scenarios =
        match scenario with
        | Some name -> (
            match Campaign.by_name ~seed name with
            | Some s -> Ok [ s ]
            | None ->
                Error
                  (Fmt.str "unknown scenario %S (try --list); known: %s" name
                     (String.concat ", " (Campaign.names ()))))
        | None ->
            Ok (if smoke then Campaign.smoke ~seed else Campaign.campaign ~seed)
      in
      match scenarios with
      | Error m ->
          Fmt.epr "error: %s@." m;
          1
      | Ok scenarios -> (
          let log = if quiet then ignore else fun m -> Fmt.pr "  %s@." m in
          Obs_cli.with_sink ~trace ~sample ~metrics @@ fun sink ->
          match
            List.map
              (fun s ->
                let o = Campaign.run ~log ~sink s in
                Fmt.pr "%a@." Campaign.outcome_pp o;
                List.iter
                  (fun p -> Fmt.pr "    %a@." Campaign.phase_outcome_pp p)
                  o.Campaign.phases;
                o)
              scenarios
          with
          | exception Invalid_argument m ->
              Fmt.epr "error: %s@." m;
              1
          | outcomes -> (
              match
                Option.iter
                  (fun path ->
                    Regemu_obs.Json.to_file path
                      (Campaign.to_json ~seed ~smoke outcomes))
                  json
              with
              | exception Sys_error m ->
                  Fmt.epr "error: %s@." m;
                  1
              | () ->
                  if Campaign.all_pass outcomes then 0
                  else (
                    Fmt.epr
                      "error: a chaos scenario did not match its \
                       expectation@.";
                    1)))
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run deterministic nemesis campaigns against the live cluster: \
          lossy transport, partitions, crash-recovery, and beyond-f \
          outages, judged by the online consistency checker.")
    Term.(
      const run $ smoke_arg $ list_arg $ scenario_arg $ json_arg $ quiet_arg
      $ seed_arg $ Obs_cli.trace_arg
      $ Obs_cli.sample_arg ~default:1
      $ Obs_cli.metrics_arg)

(* --- dst ----------------------------------------------------------------- *)

let dst_cmd =
  let open Regemu_dst in
  let fuzz_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuzz" ] ~docv:"N"
          ~doc:"Sweep $(docv) consecutive seeds and tally failures.")
  in
  let profile_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("quiet", Dst_fuzz.Quiet);
               ("chaos", Dst_fuzz.Chaos);
               ("hunt", Dst_fuzz.Hunt);
             ])
          Dst_fuzz.Quiet
      & info [ "profile" ]
          ~doc:
            "Fuzz profile: $(b,quiet) (no faults, expected clean), \
             $(b,chaos) (seeded ≤f flapping, expected clean), or $(b,hunt) \
             (diskless wipes under amnesia — violations expected; \
             counterexample fodder).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-execute a regemu-dst/1 counterexample file and check \
                that it reproduces the recorded verdict and digest.")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Minimize the first failing seed to a replayable \
                counterexample (ddmin over the fault schedule, then the \
                interleaving trace).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the (shrunk) counterexample as a regemu-dst/1 \
                replay file.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the results as JSON.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Bounded, seed-fixed smoke suite (used by dune runtest): a \
                50-seed quiet sweep, a determinism cross-check, and a hunt \
                shrink-and-replay round trip.")
  in
  let algo_arg =
    Arg.(
      value
      & opt live_algo_conv Regemu_live.Live_bench.Abd
      & info [ "algo" ]
          ~doc:"Protocol under test: $(b,abd), $(b,abd-wb), \
                $(b,algorithm2), or $(b,cds).")
  in
  let writers_arg =
    Arg.(
      value & opt int 1
      & info [ "k" ]
          ~doc:"Number of writer fibers.  More than one writer makes the \
                WS check vacuous (writes overlap).")
  in
  let readers_arg =
    Arg.(value & opt int 2 & info [ "readers" ] ~doc:"Number of reader fibers.")
  in
  let ops_arg =
    Arg.(value & opt int 8 & info [ "ops" ] ~doc:"Operations per client fiber.")
  in
  let base_config algo k readers f n ops seed =
    {
      (Dst.default_config ~seed) with
      Dst.algo;
      writers = k;
      readers;
      f;
      n;
      ops_per_client = ops;
    }
  in
  let run_replay ~sink path =
    match Dst_fuzz.read_replay path with
    | Error m ->
        Fmt.epr "error: %s@." m;
        1
    | Ok spec ->
        let r = Dst_fuzz.replay ~sink spec in
        Fmt.pr "replay %s: %a@." path Dst.outcome_pp r.Dst_fuzz.outcome;
        Fmt.pr "  digest %s (%s)@."
          (Dst.run_digest r.Dst_fuzz.outcome)
          (if r.Dst_fuzz.digest_matched then "matches" else
             Fmt.str "expected %s" spec.Dst_fuzz.r_expected_digest);
        Fmt.pr "  violations %s@."
          (if r.Dst_fuzz.violations_matched then "match" else "DIVERGED");
        if Dst_fuzz.replay_matched r then begin
          Fmt.pr "counterexample reproduced@.";
          0
        end
        else begin
          Fmt.epr "error: replay diverged from the recorded run@.";
          1
        end
  in
  let run_fuzz ~profile ~base ~seeds ~shrink ~out ~json =
    let report =
      Dst_fuzz.fuzz
        ~progress:(fun o ->
          Fmt.pr "%a@." Dst.outcome_pp o)
        ~profile ~base ~seeds ()
    in
    Fmt.pr "fuzz[%s]: %d/%d seeds passed@."
      (Dst_fuzz.profile_name report.Dst_fuzz.profile)
      report.Dst_fuzz.passed report.Dst_fuzz.seeds;
    let shrunk =
      match report.Dst_fuzz.failures with
      | f :: _ when shrink || out <> None ->
          let cfg =
            Dst_fuzz.config_for profile ~base ~seed:f.Dst_fuzz.seed
          in
          let s = Dst_fuzz.shrink cfg f.Dst_fuzz.outcome in
          Fmt.pr
            "shrunk seed %d in %d runs: %d nemesis events, %d ops/client, \
             %d writers, %d readers, %d-entry trace@."
            f.Dst_fuzz.seed s.Dst_fuzz.runs_spent
            (List.length s.Dst_fuzz.cfg.Dst.nemesis)
            s.Dst_fuzz.cfg.Dst.ops_per_client s.Dst_fuzz.cfg.Dst.writers
            s.Dst_fuzz.cfg.Dst.readers
            (Array.length s.Dst_fuzz.choices);
          Fmt.pr "  %a@." Dst.outcome_pp s.Dst_fuzz.outcome;
          Option.iter
            (fun path ->
              Dst_fuzz.write_replay path ~cfg:s.Dst_fuzz.cfg
                ~choices:s.Dst_fuzz.choices ~outcome:s.Dst_fuzz.outcome;
              Fmt.pr "wrote counterexample to %s@." path)
            out;
          Some s
      | _ -> None
    in
    Option.iter
      (fun path ->
        let open Regemu_obs in
        Json.to_file path
          (Json.Obj
             [
               ("schema", Json.Str "regemu-dst-fuzz/1");
               ("profile", Json.Str (Dst_fuzz.profile_name profile));
               ("seeds", Json.Int report.Dst_fuzz.seeds);
               ("passed", Json.Int report.Dst_fuzz.passed);
               ( "failures",
                 Json.List
                   (List.map
                      (fun (f : Dst_fuzz.failure) ->
                        Dst.outcome_json f.Dst_fuzz.outcome)
                      report.Dst_fuzz.failures) );
               ( "shrunk",
                 match shrunk with
                 | None -> Json.Null
                 | Some s ->
                     Dst_fuzz.replay_json ~cfg:s.Dst_fuzz.cfg
                       ~choices:s.Dst_fuzz.choices ~outcome:s.Dst_fuzz.outcome
               );
             ]))
      json;
    (* hunt exists to produce counterexamples: failures there are the
       expected outcome, not an error *)
    match profile with
    | Dst_fuzz.Hunt -> 0
    | Dst_fuzz.Quiet | Dst_fuzz.Chaos ->
        if report.Dst_fuzz.failures = [] then 0 else 1
  in
  let run_smoke ~base =
    (* 1: a bounded quiet sweep must be clean *)
    let report = Dst_fuzz.fuzz ~profile:Dst_fuzz.Quiet ~base ~seeds:50 () in
    Fmt.pr "smoke quiet sweep: %d/%d seeds passed@." report.Dst_fuzz.passed
      report.Dst_fuzz.seeds;
    let quiet_ok = report.Dst_fuzz.failures = [] in
    (* 2: the same seed twice must give byte-identical run digests *)
    let o1 = Dst.run base and o2 = Dst.run base in
    let d1 = Dst.run_digest o1 and d2 = Dst.run_digest o2 in
    let det_ok = d1 = d2 in
    Fmt.pr "smoke determinism: %s %s %s@." d1
      (if det_ok then "=" else "<>")
      d2;
    (* 3: a hunt seed must fail, shrink, and replay to the same verdict.
       Not every seed walks into the stale-read window, so scan a few. *)
    let rec find_failure seed limit =
      if limit = 0 then None
      else
        let cfg = Dst_fuzz.config_for Dst_fuzz.Hunt ~base ~seed in
        let o = Dst.run cfg in
        if Dst.passed o then find_failure (seed + 1) (limit - 1)
        else Some (cfg, o)
    in
    let hunt_ok =
      match find_failure base.Dst.seed 10 with
      | None ->
          Fmt.pr "smoke hunt: no failing seed in 10 tries (wipe storms \
                  should violate)@.";
          false
      | Some (hunt_cfg, hunt) ->
          begin
        let s = Dst_fuzz.shrink ~budget:60 hunt_cfg hunt in
        let spec =
          Dst_fuzz.
            {
              r_cfg = s.cfg;
              r_choices = s.choices;
              r_expected_violations = s.outcome.Dst.violations;
              r_expected_digest = Dst.run_digest s.outcome;
            }
        in
        let r = Dst_fuzz.replay spec in
        Fmt.pr "smoke hunt: %d violation(s), shrink %d runs, replay %s@."
          (List.length hunt.Dst.violations)
          s.Dst_fuzz.runs_spent
          (if Dst_fuzz.replay_matched r then "reproduced" else "DIVERGED");
        Dst_fuzz.replay_matched r
      end
    in
    if quiet_ok && det_ok && hunt_ok then 0
    else begin
      Fmt.epr "error: dst smoke failed (quiet=%b determinism=%b hunt=%b)@."
        quiet_ok det_ok hunt_ok;
      1
    end
  in
  let run fuzz profile replay shrink out json smoke algo k readers f n ops seed
      trace sample metrics =
    (* tracing instruments exactly one deterministic run: the single-seed
       mode and --replay.  Sweeping modes would interleave runs in one
       trace, so they decline instead of emitting something misleading. *)
    let warn_ignored mode =
      if trace <> None || metrics <> None then
        Fmt.epr
          "warning: --trace/--metrics are ignored with %s (trace a single \
           run or a --replay instead)@."
          mode
    in
    match replay with
    | Some path ->
        Obs_cli.with_sink ~trace ~sample ~metrics @@ fun sink ->
        run_replay ~sink path
    | None -> (
        let base = base_config algo k readers f n ops seed in
        if smoke then begin
          warn_ignored "--smoke";
          run_smoke ~base
        end
        else
          match fuzz with
          | Some seeds ->
              warn_ignored "--fuzz";
              run_fuzz ~profile ~base ~seeds ~shrink ~out ~json
          | None ->
              (* single run of one seed under the profile *)
              Obs_cli.with_sink ~trace ~sample ~metrics @@ fun sink ->
              let cfg = Dst_fuzz.config_for profile ~base ~seed in
              let o = Dst.run ~sink cfg in
              Fmt.pr "%a@." Dst.outcome_pp o;
              Fmt.pr "digest %s@." (Dst.run_digest o);
              Option.iter
                (fun path ->
                  Regemu_obs.Json.to_file path (Dst.outcome_json o))
                json;
              (match (shrink || out <> None, Dst.passed o) with
              | true, false ->
                  let s = Dst_fuzz.shrink cfg o in
                  Fmt.pr "shrunk in %d runs: %d nemesis events, %d-entry \
                          trace@."
                    s.Dst_fuzz.runs_spent
                    (List.length s.Dst_fuzz.cfg.Dst.nemesis)
                    (Array.length s.Dst_fuzz.choices);
                  Option.iter
                    (fun path ->
                      Dst_fuzz.write_replay path ~cfg:s.Dst_fuzz.cfg
                        ~choices:s.Dst_fuzz.choices ~outcome:s.Dst_fuzz.outcome;
                      Fmt.pr "wrote counterexample to %s@." path)
                    out
              | _ -> ());
              (match profile with
              | Dst_fuzz.Hunt -> 0
              | _ -> if Dst.passed o then 0 else 1))
  in
  Cmd.v
    (Cmd.info "dst"
       ~doc:
         "Deterministic-schedule testing: run the live cluster under a \
          virtual scheduler where one (seed, config) pair fixes the whole \
          run, fuzz schedules, shrink failures, and replay \
          counterexamples.")
    Term.(
      const run $ fuzz_arg $ profile_arg $ replay_arg $ shrink_arg $ out_arg
      $ json_arg $ smoke_arg $ algo_arg $ writers_arg $ readers_arg
      $ Arg.(value & opt int 1 & info [ "f" ] ~doc:"Failure threshold.")
      $ Arg.(value & opt int 3 & info [ "n" ] ~doc:"Number of servers.")
      $ ops_arg $ seed_arg $ Obs_cli.trace_arg
      $ Obs_cli.sample_arg ~default:1
      $ Obs_cli.metrics_arg)

(* --- keyspace ------------------------------------------------------------ *)

let keyspace_cmd =
  let open Regemu_keyspace in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Run the small CI-sized spec (seconds, not minutes).")
  in
  let keys_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "keys" ] ~docv:"K" ~doc:"Number of keys in the keyspace.")
  in
  let zipf_arg =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "zipf" ] ~docv:"SKEWS"
          ~doc:
            "Comma-separated zipf skews, one open-loop run each (0 is \
             uniform).")
  in
  let rate_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "arrival-rate" ] ~docv:"OPS_PER_S"
          ~doc:"Open-loop Poisson arrival rate.")
  in
  let ops_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "ops" ] ~docv:"N" ~doc:"Total operations per skew.")
  in
  let window_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~docv:"W"
          ~doc:"In-flight bound: size of the worker pool.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"OPS"
          ~doc:
            "Resident-op budget the memory-bounded checker must stay \
             under; exceeded ⇒ nonzero exit.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the trajectory as JSON (regemu-keyspace/1 schema), \
             validated before the write.")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress per-skew progress lines.")
  in
  let backend_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("threads", Regemu_live.Transport.Threads);
               ("domains", Regemu_live.Transport.Domains);
               ("socket", Regemu_live.Transport.Socket);
             ])
          Regemu_live.Transport.Threads
      & info [ "backend" ]
          ~doc:
            "Message fabric under each skew's cluster: $(b,threads), \
             $(b,domains), or $(b,socket).")
  in
  let kalgo_arg =
    Arg.(
      value
      & opt live_algo_conv Regemu_live.Live_bench.Abd
      & info [ "algo" ]
          ~doc:"Emulation running the per-key quorums.  Only $(b,abd) has \
                a keyed form today; anything else is rejected.")
  in
  let run smoke keys zipfs rate ops window budget nval fval algo backend json
      quiet seed trace sample metrics =
    let spec = if smoke then Kbench.smoke_spec else Kbench.default_spec in
    let spec =
      {
        spec with
        Kbench.algo;
        seed;
        n = Option.value nval ~default:spec.Kbench.n;
        f = Option.value fval ~default:spec.Kbench.f;
        keys = Option.value keys ~default:spec.Kbench.keys;
        zipfs = Option.value zipfs ~default:spec.Kbench.zipfs;
        arrival_rate = Option.value rate ~default:spec.Kbench.arrival_rate;
        total_ops = Option.value ops ~default:spec.Kbench.total_ops;
        window = Option.value window ~default:spec.Kbench.window;
        budget_ops = Option.value budget ~default:spec.Kbench.budget_ops;
        backend;
      }
    in
    Obs_cli.with_sink ~trace ~sample ~metrics @@ fun sink ->
    match Kbench.run ~quiet ~sink spec with
    | exception Invalid_argument m ->
        Fmt.epr "error: %s@." m;
        1
    | outcome -> (
        Fmt.pr "%a@." Kbench.outcome_pp outcome;
        let doc = Kbench.to_json outcome in
        match Kbench.validate_keyspace_json doc with
        | Error m ->
            Fmt.epr "error: refusing to write invalid %s document: %s@."
              Kbench.schema m;
            1
        | Ok () -> (
            match Option.iter (fun path -> Json.to_file path doc) json with
            | exception Sys_error m ->
                Fmt.epr "error: %s@." m;
                1
            | () ->
                let bad =
                  List.filter
                    (fun s ->
                      s.Kbench.violations > 0
                      || s.Kbench.deep_mismatches > 0
                      || not s.Kbench.within_budget)
                    outcome.Kbench.skews
                in
                if bad = [] then 0
                else begin
                  Fmt.epr
                    "error: %d skew(s) failed (violations, deep mismatch, \
                     or over budget)@."
                    (List.length bad);
                  1
                end))
  in
  Cmd.v
    (Cmd.info "keyspace"
       ~doc:
         "Open-loop load over a multi-register keyspace: zipf key \
          popularity, Poisson arrivals, per-key ABD quorums on 2f+1 \
          replicas, and a memory-bounded online WS-Regularity checker \
          with settled-prefix GC.")
    Term.(
      const run $ smoke_arg $ keys_arg $ zipf_arg $ rate_arg $ ops_arg
      $ window_arg $ budget_arg
      $ Arg.(
          value
          & opt (some int) None
          & info [ "n" ] ~doc:"Number of servers.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "f" ] ~doc:"Failure threshold.")
      $ kalgo_arg
      $ backend_arg $ json_arg $ quiet_arg $ seed_arg $ Obs_cli.trace_arg
      $ Obs_cli.sample_arg ~default:64
      $ Obs_cli.metrics_arg)

(* --- trace ---------------------------------------------------------------- *)

let trace_cmd =
  let open Regemu_obs in
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-execute a regemu-dst/1 counterexample under the virtual \
                scheduler with full-sampling tracing on — the post-mortem \
                microscope for a shrunk violation.")
  in
  let in_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "in" ] ~docv:"FILE"
          ~doc:"Load a previously written regemu-trace/1 Chrome trace \
                instead of producing one.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the replay's trace as Chrome trace_event JSON \
                (regemu-trace/1).  Only meaningful with $(b,--replay).")
  in
  let timeline_arg =
    Arg.(
      value & flag
      & info [ "timeline" ]
          ~doc:"Print the compact text timeline (the default when no \
                $(b,--out) is given).")
  in
  let summarize rows =
    let recs = List.sort_uniq String.compare (List.map fst rows) in
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (_, e) ->
        let cat = e.Event.cat in
        Hashtbl.replace tbl cat
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl cat)))
      rows;
    Fmt.pr "%d events across %d recorders@." (List.length rows)
      (List.length recs);
    List.iter
      (fun (cat, n) -> Fmt.pr "  %-8s %d@." cat n)
      (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []))
  in
  let run replay in_ out timeline =
    match (replay, in_) with
    | Some _, Some _ ->
        Fmt.epr "error: --replay and --in are mutually exclusive@.";
        1
    | None, None ->
        Fmt.epr "error: nothing to do — pass --replay FILE or --in FILE@.";
        1
    | Some path, None -> (
        let open Regemu_dst in
        match Dst_fuzz.read_replay path with
        | Error m ->
            Fmt.epr "error: %s@." m;
            1
        | Ok spec -> (
            let tr = Trace.create () in
            let sink = Regemu_live.Sink.make ~trace:tr () in
            let r = Dst_fuzz.replay ~sink spec in
            Fmt.pr "replay %s: %a@." path Dst.outcome_pp r.Dst_fuzz.outcome;
            match
              Option.iter
                (fun p ->
                  Json.to_file p (Export.chrome_json tr);
                  Fmt.pr "wrote trace to %s (%d events)@." p
                    (Trace.recorded tr))
                out
            with
            | exception Sys_error m ->
                Fmt.epr "error: %s@." m;
                1
            | () ->
                if timeline || out = None then
                  print_string (Export.timeline tr);
                if Dst_fuzz.replay_matched r then 0
                else begin
                  Fmt.epr "error: replay diverged from the recorded run@.";
                  1
                end))
    | None, Some path -> (
        if out <> None then begin
          Fmt.epr "error: --out needs --replay (with --in the trace already \
                   exists)@.";
          1
        end
        else
          match Json.of_file path with
          | Error m ->
              Fmt.epr "error: %s: %s@." path m;
              1
          | Ok doc -> (
              match Export.of_chrome_json doc with
              | Error m ->
                  Fmt.epr "error: %s is not a valid regemu-trace/1 trace: \
                           %s@."
                    path m;
                  1
              | Ok rows ->
                  if timeline then
                    print_string (Export.timeline_of_events rows)
                  else summarize rows;
                  0))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Work with regemu-trace/1 traces: re-execute a DST counterexample \
          with tracing on, export Chrome trace_event JSON, or render a \
          saved trace as a text timeline.")
    Term.(const run $ replay_arg $ in_arg $ out_arg $ timeline_arg)

let default =
  Term.(ret (const (`Help (`Pager, None))))

(* Must run before argument parsing: when the socket transport
   re-execs this binary as a server child, [child_check] serves and
   exits instead of entering the CLI. *)
let () = Regemu_live.Transport_socket.child_check ()

let () =
  let info =
    Cmd.info "regemu" ~version:"1.0.0"
      ~doc:
        "Space complexity of fault-tolerant register emulations (PODC 2017) \
         — reproduction toolkit."
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            table1_cmd; fig1_cmd; fig2_cmd; lemma1_cmd; timeline_cmd;
            thm1_cmd; thm2_cmd;
            thm5_cmd; thm6_cmd; thm7_cmd; thm8_cmd; plan_cmd; alg1_cmd;
            classification_cmd; rspace_cmd; inversion_cmd;
            latency_cmd; fuzz_cmd; explore_cmd; run_cmd; verify_cmd;
            sweep_cmd; netabd_cmd; live_cmd; compare_cmd; chaos_cmd; dst_cmd;
            keyspace_cmd; trace_cmd;
            all_cmd;
          ]))

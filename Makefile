# Convenience targets; dune is the source of truth.

.PHONY: all build test check bench perf-bench live-bench tail-bench compare-bench chaos-bench keyspace-bench dst-fuzz explore-smoke explore-exhaustive experiments trace-demo verify examples clean loc

all: build

build:
	dune build @all

test:
	dune runtest

# everything a merge should pass: the build, the test suite (which
# replays the trace demo), and — where odoc is installed — the API docs
check: build test
	@if command -v odoc >/dev/null 2>&1; \
	then dune build @doc; \
	else echo "odoc not installed; skipping the doc build"; fi

bench:
	dune exec bench/main.exe

# the tracked perf trajectory: the interleaved three-way backend A/B
# (threads vs domains vs socket, ABD, 16..256 client threads, median of
# 3 per point) in the regemu-bench/2 schema, with per-point
# speedup-vs-threads on the non-threads rows
perf-bench:
	dune exec bin/regemu.exe -- live --saturate --ops 200 --seed 42 --json BENCH_live.json

# real threads, fault injection, online checking; writes BENCH_live_suite.json
live-bench:
	dune exec bin/regemu.exe -- live --bench --json BENCH_live_suite.json

# the tail-latency A/B: baseline vs unhedged vs hedged under a single
# 10x gray straggler, median of 5 interleaved rounds per arm; writes
# BENCH_tail.json in the regemu-tail/1 schema (validated before persisting)
tail-bench:
	dune exec bin/regemu.exe -- live --tail --json BENCH_tail.json

# the three-way space-vs-throughput-vs-fault-tolerance race: ABD,
# Algorithm 2, and the CDS data store at each load point on the
# threads and domains fabrics, median of 3 per cell; writes
# BENCH_compare.json in the regemu-compare/1 schema (validated before
# the write and re-parsed from disk after it)
compare-bench:
	dune exec bin/regemu.exe -- compare --json BENCH_compare.json

# the full nemesis campaign against the live cluster; writes BENCH_chaos.json
chaos-bench:
	dune exec bin/regemu.exe -- chaos --json BENCH_chaos.json

# the multi-register keyspace under open-loop load: one run per zipf
# skew with the memory-bounded online checker live; writes
# BENCH_keyspace.json (schema-validated before persisting)
keyspace-bench:
	dune exec bin/regemu.exe -- keyspace --json BENCH_keyspace.json

# deterministic-schedule fuzzing: 500 quiet + 500 chaos seeds must be
# clean, then a hunt sweep that shrinks its first counterexample
dst-fuzz:
	dune exec bin/regemu.exe -- dst --fuzz 500 --profile quiet --seed 1
	dune exec bin/regemu.exe -- dst --fuzz 500 --profile chaos --seed 1
	dune exec bin/regemu.exe -- dst --fuzz 50 --profile hunt --seed 1 --shrink --out dst_counterexample.json

# the bounded explore suite dune runtest also replays: a tiny
# exhaustive DPOR run whose certificate must round-trip and validate,
# plus a 200-schedule coverage-guided burst that must stay clean (≤30 s)
explore-smoke:
	dune exec bin/regemu.exe -- explore --smoke

# prove the acceptance configuration violation-free and keep the
# machine-checkable certificates
explore-exhaustive:
	dune exec bin/regemu.exe -- explore --exhaustive --algo abd-max -f 1 -n 3 --ops-each 2 --cert-out experiments/exhaustive-abd/cert.json
	dune exec bin/regemu.exe -- explore --exhaustive --algo algorithm2 -f 1 -n 3 --ops-each 2 --cert-out experiments/exhaustive-alg2/cert.json

# the whole campaign matrix: run every arm, then append its trend
# record to BENCH_explore.json (see EXPERIMENTS.md)
experiments:
	for d in experiments/*/; do $(MAKE) -C $$d run analyze || exit $$?; done

# re-execute the committed DST counterexample with tracing on and
# write the Chrome trace + text timeline the observability docs walk
# through; dune runtest replays the same command
trace-demo:
	dune exec bin/regemu.exe -- trace --replay test/dst_replay_sample.json --out trace_demo.json --timeline

verify:
	dune exec bin/regemu.exe -- verify

examples:
	dune exec examples/quickstart.exe
	dune exec examples/cloud_kv.exe
	dune exec examples/space_planner.exe
	dune exec examples/adversary_demo.exe
	dune exec examples/message_abd.exe
	dune exec examples/bug_hunt.exe

clean:
	dune clean

loc:
	@find . \( -name '*.ml' -o -name '*.mli' \) -not -path './_build/*' | xargs wc -l | tail -1
